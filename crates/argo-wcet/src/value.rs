//! Interval value analysis for loop bounds.
//!
//! A small abstract interpreter over the integer interval domain. Its one
//! job is the classical aiT-style *loop bound analysis*: derive, for every
//! `for` loop, a static upper bound on the trip count, given optional
//! ranges for the entry function's integer parameters.
//!
//! Reals and booleans are tracked as ⊤. Loop bodies are analysed to a
//! fixpoint with widening after a fixed number of rounds, so the analysis
//! always terminates.

use crate::WcetError;
use argo_ir::ast::*;
use argo_ir::resolve::{RCall, RExpr, RFunction, RLValue, RStmt, RStmtKind, Resolution};
use argo_ir::StmtId;
use std::collections::BTreeMap;

/// An integer interval `[lo, hi]`; `None` endpoints mean unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower endpoint (`None` = −∞).
    pub lo: Option<i64>,
    /// Upper endpoint (`None` = +∞).
    pub hi: Option<i64>,
}

impl Interval {
    /// The unbounded interval ⊤.
    pub const TOP: Interval = Interval { lo: None, hi: None };

    /// A singleton interval.
    pub fn exact(v: i64) -> Interval {
        Interval {
            lo: Some(v),
            hi: Some(v),
        }
    }

    /// A bounded interval `[lo, hi]`.
    pub fn range(lo: i64, hi: i64) -> Interval {
        Interval {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// Join (union hull).
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Abstract addition.
    #[allow(clippy::should_implement_trait)] // interval ops, not `std::ops` (no Output inference games)
    pub fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.zip(other.lo).and_then(|(a, b)| a.checked_add(b)),
            hi: self.hi.zip(other.hi).and_then(|(a, b)| a.checked_add(b)),
        }
    }

    /// Abstract subtraction.
    #[allow(clippy::should_implement_trait)] // interval ops, not `std::ops` (no Output inference games)
    pub fn sub(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.zip(other.hi).and_then(|(a, b)| a.checked_sub(b)),
            hi: self.hi.zip(other.lo).and_then(|(a, b)| a.checked_sub(b)),
        }
    }

    /// Abstract multiplication (corner products).
    #[allow(clippy::should_implement_trait)] // interval ops, not `std::ops` (no Output inference games)
    pub fn mul(self, other: Interval) -> Interval {
        let corners = |a: Option<i64>, b: Option<i64>| a.zip(b).and_then(|(x, y)| x.checked_mul(y));
        let products = [
            corners(self.lo, other.lo),
            corners(self.lo, other.hi),
            corners(self.hi, other.lo),
            corners(self.hi, other.hi),
        ];
        if products.iter().any(|p| p.is_none())
            || self.lo.is_none()
            || self.hi.is_none()
            || other.lo.is_none()
            || other.hi.is_none()
        {
            return Interval::TOP;
        }
        let vals: Vec<i64> = products.iter().map(|p| p.unwrap()).collect();
        Interval {
            lo: vals.iter().copied().min(),
            hi: vals.iter().copied().max(),
        }
    }

    /// Abstract truncating division (conservative corner division).
    #[allow(clippy::should_implement_trait)] // interval ops, not `std::ops` (no Output inference games)
    pub fn div(self, other: Interval) -> Interval {
        // Division by an interval possibly containing 0: ⊤ (runtime error
        // path aside, stay sound).
        match (other.lo, other.hi) {
            (Some(l), Some(h)) if l > 0 || h < 0 => {
                let (Some(a), Some(b)) = (self.lo, self.hi) else {
                    return Interval::TOP;
                };
                let candidates = [a / l, a / h, b / l, b / h];
                Interval {
                    lo: candidates.iter().copied().min(),
                    hi: candidates.iter().copied().max(),
                }
            }
            _ => Interval::TOP,
        }
    }

    /// Returns `true` if both endpoints are finite.
    pub fn is_bounded(self) -> bool {
        self.lo.is_some() && self.hi.is_some()
    }
}

/// Analysis context: ranges for entry-function integer parameters.
#[derive(Debug, Clone, Default)]
pub struct ValueCtx {
    /// Parameter name → interval. Parameters without an entry are ⊤.
    pub param_ranges: BTreeMap<String, Interval>,
}

impl ValueCtx {
    /// Context with one bounded parameter.
    pub fn with_param(name: impl Into<String>, lo: i64, hi: i64) -> ValueCtx {
        let mut c = ValueCtx::default();
        c.param_ranges.insert(name.into(), Interval::range(lo, hi));
        c
    }
}

/// Result of the analysis: an upper trip-count bound per `for`/`while`
/// loop statement id.
pub type LoopBounds = BTreeMap<StmtId, u64>;

/// Computes loop bounds for `func` in `program`.
///
/// Resolves the program first; drivers that already hold a
/// [`Resolution`] (the `argo-core` frontend) should call
/// [`loop_bounds_resolved`] instead to skip the extra pass.
///
/// # Errors
///
/// Returns [`WcetError`] if a `for` loop's trip count cannot be bounded
/// (WCET analysis would be impossible) or the function is unknown.
pub fn loop_bounds(program: &Program, func: &str, ctx: &ValueCtx) -> Result<LoopBounds, WcetError> {
    let resolution = Resolution::of(program);
    loop_bounds_resolved(&resolution, func, ctx)
}

/// Computes loop bounds for `func` over a prebuilt [`Resolution`].
///
/// The analysis runs entirely on the slot-resolved mirror: environments
/// are flat `Vec<Interval>`s indexed by frame slot, and the widening
/// fixpoint compares slots positionally instead of materialising key
/// vectors — no string hashing or cloning anywhere in the loop.
///
/// # Errors
///
/// See [`loop_bounds`].
pub fn loop_bounds_resolved(
    resolution: &Resolution,
    func: &str,
    ctx: &ValueCtx,
) -> Result<LoopBounds, WcetError> {
    let entry = resolution
        .function_index(func)
        .ok_or_else(|| WcetError::new(format!("no function `{func}`")))?;
    let mut bounds = LoopBounds::new();
    // Entry: parameter ranges from the context.
    {
        let rfunc = resolution.function(entry);
        let mut env = vec![Interval::TOP; rfunc.frame_len as usize];
        for p in &rfunc.params {
            if !p.is_array {
                let name = resolution.name(rfunc.slot_symbols[p.slot.idx()]);
                if let Some(&iv) = ctx.param_ranges.get(name) {
                    env[p.slot.idx()] = iv;
                }
            }
        }
        let mut an = Analyzer {
            resolution,
            fixpoint_rounds: 0,
            rfunc,
            bounds: &mut bounds,
        };
        an.block(&rfunc.body, &mut env)?;
        an.publish_fixpoint_rounds();
    }
    // Callee loops: analyse every function reachable from `func` with ⊤
    // parameters (conservative: their own literal bounds must suffice).
    let mut visited = vec![false; resolution.functions.len()];
    visited[entry] = true;
    let mut queue: Vec<u32> = resolution.function(entry).callees.clone();
    while let Some(fi) = queue.pop() {
        if std::mem::replace(&mut visited[fi as usize], true) {
            continue;
        }
        let rfunc = resolution.function(fi as usize);
        let mut env = vec![Interval::TOP; rfunc.frame_len as usize];
        let mut an = Analyzer {
            resolution,
            fixpoint_rounds: 0,
            rfunc,
            bounds: &mut bounds,
        };
        an.block(&rfunc.body, &mut env)?;
        an.publish_fixpoint_rounds();
        queue.extend_from_slice(&rfunc.callees);
    }
    Ok(bounds)
}

/// Slot-indexed abstract environment: one interval per frame slot
/// (array and untouched slots stay ⊤).
type Env = Vec<Interval>;

/// The `argo_wcet_fixpoint_iters` histogram handle, resolved once.
fn fixpoint_histogram() -> &'static std::sync::Arc<argo_trace::Histogram> {
    static HIST: std::sync::OnceLock<std::sync::Arc<argo_trace::Histogram>> =
        std::sync::OnceLock::new();
    HIST.get_or_init(|| {
        argo_trace::metrics().histogram("argo_wcet_fixpoint_iters", argo_trace::COUNT_BUCKETS)
    })
}

struct Analyzer<'a> {
    resolution: &'a Resolution,
    /// Widening-fixpoint rounds run while analysing this function
    /// (a plain local count; published to the gated
    /// `argo_wcet_fixpoint_iters` histogram once per function).
    fixpoint_rounds: u64,
    rfunc: &'a RFunction,
    bounds: &'a mut LoopBounds,
}

impl<'a> Analyzer<'a> {
    /// Publishes this function's fixpoint-round count to the
    /// `argo_wcet_fixpoint_iters` histogram. Gated — a metrics-off
    /// process pays one relaxed load per analysed function.
    fn publish_fixpoint_rounds(&self) {
        if argo_trace::metrics_on() {
            fixpoint_histogram().observe(self.fixpoint_rounds);
        }
    }

    fn block(&mut self, block: &[u32], env: &mut Env) -> Result<(), WcetError> {
        for &i in block {
            self.stmt(self.rfunc.stmt(i), env)?;
        }
        Ok(())
    }

    /// Widens every slot that moved since `before` to ⊤ (the
    /// changed-set is the positional diff — no key materialisation),
    /// excluding `keep` (the pinned induction variable, if any).
    fn widen_changed(env: &mut Env, before: &Env, keep: Option<usize>) {
        for (i, (cur, prev)) in env.iter_mut().zip(before).enumerate() {
            if cur != prev && Some(i) != keep {
                *cur = Interval::TOP;
            }
        }
    }

    fn stmt(&mut self, s: &RStmt, env: &mut Env) -> Result<(), WcetError> {
        match &s.kind {
            RStmtKind::DeclScalar { slot, init, .. } => {
                env[slot.idx()] = match init {
                    Some(e) => self.eval(e, env),
                    None => Interval::TOP,
                };
                Ok(())
            }
            RStmtKind::DeclArray { .. } => Ok(()),
            RStmtKind::Assign { target, value } => {
                if let RLValue::Var(slot) = target {
                    env[slot.idx()] = self.eval(value, env);
                }
                Ok(())
            }
            RStmtKind::If {
                then_blk, else_blk, ..
            } => {
                let mut env_then = env.clone();
                let mut env_else = env.clone();
                self.block(then_blk, &mut env_then)?;
                self.block(else_blk, &mut env_else)?;
                // Join, slot-wise.
                for (slot, (a, b)) in env_then.iter().zip(&env_else).enumerate() {
                    env[slot] = a.join(*b);
                }
                Ok(())
            }
            RStmtKind::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let lo_iv = self.eval(lo, env);
                let hi_iv = self.eval(hi, env);
                let trip = match (lo_iv.lo, hi_iv.hi) {
                    (Some(l), Some(h)) if h > l => ((h - l) as u64).div_ceil(*step as u64),
                    (Some(l), Some(h)) if h <= l => 0,
                    _ => {
                        return Err(WcetError::new(format!(
                            "cannot bound loop {} over `{}`: bounds not statically bounded",
                            s.id,
                            self.resolution.name(self.rfunc.slot_symbols[var.idx()])
                        )))
                    }
                };
                self.bounds.insert(s.id, trip);
                // Body fixpoint with widening after 2 rounds; the
                // induction variable is pinned to its in-loop range.
                let in_loop = Interval {
                    lo: lo_iv.lo,
                    hi: hi_iv.hi.map(|h| h - 1),
                };
                let mut body_env = env.clone();
                body_env[var.idx()] = in_loop;
                let mut before = Env::new();
                for round in 0..4 {
                    self.fixpoint_rounds += 1;
                    before.clone_from(&body_env);
                    self.block(body, &mut body_env)?;
                    body_env[var.idx()] = in_loop;
                    if body_env == before {
                        break;
                    }
                    if round >= 2 {
                        Self::widen_changed(&mut body_env, &before, Some(var.idx()));
                    }
                }
                // After the loop: merge body effects; induction var ends
                // in [lo, hi+step-1] hull.
                for (slot, v) in body_env.into_iter().enumerate() {
                    env[slot] = env[slot].join(v);
                }
                env[var.idx()] = lo_iv.join(hi_iv.add(Interval::exact(*step - 1)));
                Ok(())
            }
            RStmtKind::While { bound, body, .. } => {
                self.bounds.insert(s.id, *bound);
                // Analyse body to a widened fixpoint.
                let mut body_env = env.clone();
                let mut before = Env::new();
                for round in 0..4 {
                    self.fixpoint_rounds += 1;
                    before.clone_from(&body_env);
                    self.block(body, &mut body_env)?;
                    if body_env == before {
                        break;
                    }
                    if round >= 2 {
                        Self::widen_changed(&mut body_env, &before, None);
                    }
                }
                for (slot, v) in body_env.into_iter().enumerate() {
                    env[slot] = env[slot].join(v);
                }
                Ok(())
            }
            RStmtKind::Call(_) | RStmtKind::Return { .. } => Ok(()),
        }
    }

    fn eval(&self, e: &RExpr, env: &Env) -> Interval {
        match e {
            RExpr::Int(v) => Interval::exact(*v),
            RExpr::Var(slot) => env[slot.idx()],
            RExpr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs, env);
                let b = self.eval(rhs, env);
                match op {
                    BinOp::Add => a.add(b),
                    BinOp::Sub => a.sub(b),
                    BinOp::Mul => a.mul(b),
                    BinOp::Div => a.div(b),
                    BinOp::Rem => match (b.lo, b.hi) {
                        (Some(l), Some(h)) if l > 0 => Interval::range(0, h - 1),
                        _ => Interval::TOP,
                    },
                    _ => Interval::TOP,
                }
            }
            RExpr::Unary { op: UnOp::Neg, arg } => Interval::exact(0).sub(self.eval(arg, env)),
            RExpr::Cast {
                to: argo_ir::Scalar::Int,
                arg,
            } => {
                // Casting an int-valued expression is the identity; real
                // sources are ⊤ (we don't track reals).
                match &**arg {
                    RExpr::Int(v) => Interval::exact(*v),
                    RExpr::Var(slot) => env[slot.idx()],
                    _ => Interval::TOP,
                }
            }
            RExpr::Call(RCall::Intrinsic { sig, args }) => match sig.name {
                "imin" if args.len() == 2 => {
                    let a = self.eval(&args[0], env);
                    let b = self.eval(&args[1], env);
                    Interval {
                        lo: a.lo.zip(b.lo).map(|(x, y)| x.min(y)).or(a.lo).or(b.lo),
                        hi: match (a.hi, b.hi) {
                            (Some(x), Some(y)) => Some(x.min(y)),
                            (Some(x), None) | (None, Some(x)) => Some(x),
                            (None, None) => None,
                        },
                    }
                }
                "imax" if args.len() == 2 => {
                    let a = self.eval(&args[0], env);
                    let b = self.eval(&args[1], env);
                    Interval {
                        lo: match (a.lo, b.lo) {
                            (Some(x), Some(y)) => Some(x.max(y)),
                            (Some(x), None) | (None, Some(x)) => Some(x),
                            (None, None) => None,
                        },
                        hi: a.hi.zip(b.hi).map(|(x, y)| x.max(y)).or(a.hi).or(b.hi),
                    }
                }
                "iabs" if args.len() == 1 => {
                    let a = self.eval(&args[0], env);
                    match (a.lo, a.hi) {
                        (Some(l), Some(h)) => {
                            let m = l.abs().max(h.abs());
                            Interval::range(0, m)
                        }
                        _ => Interval {
                            lo: Some(0),
                            hi: None,
                        },
                    }
                }
                _ => Interval::TOP,
            },
            _ => Interval::TOP,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::parse::parse_program;

    fn bounds_of(src: &str, ctx: &ValueCtx) -> Result<Vec<u64>, WcetError> {
        let p = parse_program(src).unwrap();
        let b = loop_bounds(&p, "main", ctx)?;
        let mut v: Vec<(StmtId, u64)> = b.into_iter().collect();
        v.sort();
        Ok(v.into_iter().map(|(_, n)| n).collect())
    }

    #[test]
    fn constant_bounds() {
        let b = bounds_of(
            "void main(real a[64]) { int i; for (i=0;i<64;i=i+1) { a[i] = 0.0; } }",
            &ValueCtx::default(),
        )
        .unwrap();
        assert_eq!(b, vec![64]);
    }

    #[test]
    fn stepped_and_nested_bounds() {
        let b = bounds_of(
            "void main(real a[8][8]) { int i; int j; \
             for (i=0;i<8;i=i+2) { for (j=0;j<8;j=j+1) { a[i][j] = 0.0; } } }",
            &ValueCtx::default(),
        )
        .unwrap();
        assert_eq!(b, vec![4, 8]);
    }

    #[test]
    fn parameter_ranges_bound_loops() {
        let ctx = ValueCtx::with_param("n", 0, 100);
        let b = bounds_of(
            "void main(real a[128], int n) { int i; for (i=0;i<n;i=i+1) { a[i] = 0.0; } }",
            &ctx,
        )
        .unwrap();
        assert_eq!(b, vec![100]);
    }

    #[test]
    fn unbounded_parameter_is_an_error() {
        let err = bounds_of(
            "void main(real a[128], int n) { int i; for (i=0;i<n;i=i+1) { a[i] = 0.0; } }",
            &ValueCtx::default(),
        )
        .unwrap_err();
        assert!(err.msg.contains("cannot bound"));
    }

    #[test]
    fn derived_bounds_through_arithmetic() {
        let ctx = ValueCtx::with_param("n", 1, 16);
        let b = bounds_of(
            "void main(real a[64], int n) { int i; int m; m = n * 2 + 1; \
             for (i=0;i<m;i=i+1) { a[i] = 0.0; } }",
            &ctx,
        )
        .unwrap();
        assert_eq!(b, vec![33]);
    }

    #[test]
    fn while_uses_pragma_bound() {
        let b = bounds_of(
            "void main() { real x; x = 100.0; #pragma bound 12\n \
             while (x > 1.0) { x = x / 2.0; } }",
            &ValueCtx::default(),
        )
        .unwrap();
        assert_eq!(b, vec![12]);
    }

    #[test]
    fn branch_join_takes_hull() {
        let ctx = ValueCtx::with_param("k", 0, 1);
        let b = bounds_of(
            "void main(real a[32], int k) { int m; int i; \
             if (k > 0) { m = 8; } else { m = 20; } \
             for (i=0;i<m;i=i+1) { a[i] = 0.0; } }",
            &ctx,
        )
        .unwrap();
        assert_eq!(b, vec![20]);
    }

    #[test]
    fn loop_body_updates_widen_safely() {
        // `acc` grows in the loop: widening must not diverge, and the
        // loop bound stays 10.
        let b = bounds_of(
            "void main(real a[16]) { int i; int acc; acc = 0; \
             for (i=0;i<10;i=i+1) { acc = acc + 3; a[0] = 0.0; } }",
            &ValueCtx::default(),
        )
        .unwrap();
        assert_eq!(b, vec![10]);
    }

    #[test]
    fn chunked_bounds_divide() {
        // The shapes produced by the chunking transformation:
        // lo + d*c/k style bounds must stay bounded.
        let b = bounds_of(
            "void main(real a[64]) { int i0; int i1; \
             for (i0 = 0 + (64 - 0) * 0 / 2; i0 < 0 + (64 - 0) * 1 / 2; i0 = i0 + 1) { a[i0] = 0.0; } \
             for (i1 = 0 + (64 - 0) * 1 / 2; i1 < 0 + (64 - 0) * 2 / 2; i1 = i1 + 1) { a[i1] = 1.0; } }",
            &ValueCtx::default(),
        )
        .unwrap();
        // Each chunk: analysis sees [0,32) and [32,64): exactly 32 each.
        assert_eq!(b, vec![32, 32]);
    }

    #[test]
    fn callee_loops_are_bounded_too() {
        let src = "void helper(real a[8]) { int i; for (i=0;i<8;i=i+1) { a[i] = 0.0; } } \
                   void main(real a[8]) { helper(a); }";
        let p = parse_program(src).unwrap();
        let b = loop_bounds(&p, "main", &ValueCtx::default()).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(*b.values().next().unwrap(), 8);
    }

    #[test]
    fn interval_arithmetic_basics() {
        let a = Interval::range(2, 5);
        let b = Interval::range(-1, 3);
        assert_eq!(a.add(b), Interval::range(1, 8));
        assert_eq!(a.sub(b), Interval::range(-1, 6));
        assert_eq!(a.mul(b), Interval::range(-5, 15));
        assert_eq!(a.join(b), Interval::range(-1, 5));
        assert_eq!(
            Interval::range(10, 20).div(Interval::exact(3)),
            Interval::range(3, 6)
        );
        assert!(!Interval::TOP.is_bounded());
    }
}
