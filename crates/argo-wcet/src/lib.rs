//! # argo-wcet — code-level and system-level WCET analysis
//!
//! "Code-level and system-level WCET analysis jointly calculate the
//! multi-core WCET for the target architectures. … Code-level WCET
//! estimation calculates the isolated WCET of code fragments on one core
//! … System-level WCET estimation builds on the parallel program
//! representation to precisely identify resource conflicts … through (i) a
//! static analysis that determines as accurately as possible if several
//! code snippets may happen in parallel and (ii) a cost model of the
//! interference derived from the platform abstract models." (paper § II-D)
//!
//! Module map:
//!
//! * [`value`] — interval analysis computing loop bounds (the aiT role's
//!   value analysis);
//! * [`cost`] — the per-operation/per-access worst-case cost model,
//!   parameterised by core timing table and memory map;
//! * [`schema`] — tree-based (timing-schema) code-level WCET over the
//!   structured AST;
//! * [`ipet`] — IPET-style longest-path WCET over the CFG with innermost-
//!   first loop collapsing; cross-validates [`schema`];
//! * [`cache`] — persistence-style data-cache classification for the
//!   cache-vs-scratchpad ablation (§ III-B);
//! * [`system`] — system-level analysis: may-happen-in-parallel + WRR/bus
//!   interference inflation, with both static-precedence MHP (sound,
//!   time-independent) and time-window MHP (tighter, fixed-point).
//!
//! The soundness contract of the whole reproduction: for every program,
//! platform and schedule, the simulator's observed cycles never exceed
//! the bound computed here. Integration tests enforce it.

pub mod cache;
pub mod cost;
pub mod ipet;
pub mod schema;
pub mod system;
pub mod value;

use std::fmt;

/// Error from WCET analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct WcetError {
    /// Human-readable message.
    pub msg: String,
}

impl WcetError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> WcetError {
        WcetError { msg: msg.into() }
    }
}

impl fmt::Display for WcetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WCET error: {}", self.msg)
    }
}

impl std::error::Error for WcetError {}
