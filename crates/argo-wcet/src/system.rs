//! System-level WCET analysis.
//!
//! "System-level WCET estimation builds on the parallel program
//! representation to precisely identify resource conflicts. This is
//! achieved through (i) a static analysis that determines as accurately
//! as possible if several code snippets may happen in parallel and (ii) a
//! cost model of the interference derived from the platform abstract
//! models." (paper § II-D)
//!
//! Three may-happen-in-parallel (MHP) precisions are provided, from
//! coarsest to finest:
//!
//! * [`MhpMode::Naive`] — contention-oblivious: every shared access is
//!   charged the all-cores-contend worst case (what a tool without
//!   schedule knowledge must assume — the parMERASA observation \[4\]);
//! * [`MhpMode::Static`] — time-independent precedence reachability over
//!   dependence edges plus same-core ordering; sound regardless of actual
//!   execution times;
//! * [`MhpMode::Windows`] — time-window overlap, iterated to a fixed
//!   point with monotone contender growth (tightest).
//!
//! Inflation model: a task with `A` shared accesses and `k` worst-case
//! contenders pays `A × (wc(k) − wc(1))` extra cycles over its isolated
//! WCET, with `wc(·)` the platform's worst-case shared-access cost.

use argo_adl::{MemSpace, MemoryMap, Platform};
use argo_htg::Htg;
use argo_parir::ParallelProgram;
use argo_sched::{evaluate_assignment, CommModel, SchedCtx, TaskGraph};

/// MHP precision of the system-level analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MhpMode {
    /// All cores contend on every access (no schedule knowledge).
    Naive,
    /// Precedence-based MHP (sound, time-independent).
    Static,
    /// Time-window MHP with fixed-point iteration (tightest).
    Windows,
}

impl std::fmt::Display for MhpMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MhpMode::Naive => "naive",
            MhpMode::Static => "static-mhp",
            MhpMode::Windows => "window-mhp",
        })
    }
}

/// Result of the system-level analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemWcet {
    /// The parallel WCET bound (schedule makespan under inflated costs).
    pub bound: u64,
    /// Per-task isolated WCET (input, echoed for reports).
    pub iso_wcet: Vec<u64>,
    /// Per-task inflated WCET.
    pub task_wcet: Vec<u64>,
    /// Per-task worst-case contender count used for inflation.
    pub contenders: Vec<usize>,
    /// Final per-task start times.
    pub start: Vec<u64>,
    /// Final per-task finish times.
    pub finish: Vec<u64>,
    /// Fixed-point iterations performed.
    pub iterations: u32,
}

/// Per-task worst-case number of *shared-memory* accesses, derived from
/// the HTG access annotations filtered by the memory map.
pub fn task_shared_accesses(htg: &Htg, graph: &TaskGraph, mem: &MemoryMap) -> Vec<u64> {
    graph
        .htg_ids
        .iter()
        .map(|&tid| {
            htg.task(tid)
                .access_counts
                .iter()
                .filter(|(v, _)| mem.space_of(v) == MemSpace::Shared)
                .map(|(_, &n)| n)
                .sum()
        })
        .collect()
}

/// Runs the system-level analysis on a parallel program.
///
/// `iso_wcet[t]` must be the code-level WCET of task `t` computed with
/// `contenders = 1`; `shared_accesses[t]` its worst-case shared-access
/// count (see [`task_shared_accesses`]).
///
/// # Panics
///
/// Panics if the slices' lengths disagree with the task graph.
pub fn analyze(
    pp: &ParallelProgram,
    platform: &Platform,
    iso_wcet: &[u64],
    shared_accesses: &[u64],
    mode: MhpMode,
) -> SystemWcet {
    let n = pp.graph.len();
    assert_eq!(iso_wcet.len(), n, "iso_wcet length");
    assert_eq!(shared_accesses.len(), n, "shared_accesses length");
    let ctx = SchedCtx {
        platform,
        comm: CommModel::SignalOnly,
    };

    let delta = |t: usize, k: usize| -> u64 {
        let core = pp.schedule.assignment[t];
        let wc_k = platform.worst_case_shared_access(core, k);
        let wc_1 = platform.worst_case_shared_access(core, 1);
        shared_accesses[t].saturating_mul(wc_k.saturating_sub(wc_1))
    };

    let inflate = |contenders: &[usize]| -> Vec<u64> {
        (0..n)
            .map(|t| iso_wcet[t].saturating_add(delta(t, contenders[t])))
            .collect()
    };

    let evaluate = |costs: Vec<u64>| {
        let mut g = pp.graph.clone();
        g.cost = costs;
        evaluate_assignment(&g, &ctx, &pp.schedule.assignment)
    };

    match mode {
        MhpMode::Naive => {
            let contenders = vec![platform.core_count(); n];
            let task_wcet = inflate(&contenders);
            let s = evaluate(task_wcet.clone());
            SystemWcet {
                bound: s.makespan(),
                iso_wcet: iso_wcet.to_vec(),
                task_wcet,
                contenders,
                start: s.start,
                finish: s.finish,
                iterations: 1,
            }
        }
        MhpMode::Static => {
            let mhp = static_mhp(pp);
            let contenders = contenders_from_mhp(pp, shared_accesses, &mhp);
            let task_wcet = inflate(&contenders);
            let s = evaluate(task_wcet.clone());
            SystemWcet {
                bound: s.makespan(),
                iso_wcet: iso_wcet.to_vec(),
                task_wcet,
                contenders,
                start: s.start,
                finish: s.finish,
                iterations: 1,
            }
        }
        MhpMode::Windows => {
            // Start from isolated costs; grow contender sets monotonically
            // from window overlaps until a fixed point.
            let mut contenders = vec![1usize; n];
            let mut sched = evaluate(iso_wcet.to_vec());
            let mut iterations = 0;
            loop {
                iterations += 1;
                let mut changed = false;
                let window_mhp = windows_mhp(pp, &sched.start, &sched.finish);
                let next = contenders_from_mhp_sets(pp, shared_accesses, &window_mhp);
                for t in 0..n {
                    if next[t] > contenders[t] {
                        contenders[t] = next[t];
                        changed = true;
                    }
                }
                let task_wcet = inflate(&contenders);
                sched = evaluate(task_wcet);
                if !changed || iterations >= 10 {
                    let task_wcet = inflate(&contenders);
                    return SystemWcet {
                        bound: sched.makespan(),
                        iso_wcet: iso_wcet.to_vec(),
                        task_wcet,
                        contenders,
                        start: sched.start,
                        finish: sched.finish,
                        iterations,
                    };
                }
            }
        }
    }
}

/// Precedence-based MHP: `mhp[a][b]` iff neither task reaches the other
/// through dependence edges or same-core schedule order.
fn static_mhp(pp: &ParallelProgram) -> Vec<Vec<bool>> {
    let n = pp.graph.len();
    let mut reach = vec![vec![false; n]; n];
    for &(f, t, _) in &pp.graph.edges {
        reach[f][t] = true;
    }
    // Same-core order is also a precedence.
    for core in 0..pp.plans.len() {
        let tasks = pp.schedule.tasks_on(argo_adl::CoreId(core));
        for w in tasks.windows(2) {
            reach[w[0]][w[1]] = true;
        }
    }
    // Transitive closure (n ≤ a few hundred).
    for k in 0..n {
        // Snapshot of row k: writes to row i==k are no-ops against it.
        let row_k = reach[k].clone();
        for row in reach.iter_mut() {
            if row[k] {
                for (dst, &via_k) in row.iter_mut().zip(&row_k) {
                    *dst |= via_k;
                }
            }
        }
    }
    let mut mhp = vec![vec![false; n]; n];
    for a in 0..n {
        for b in 0..n {
            if a != b && !reach[a][b] && !reach[b][a] {
                mhp[a][b] = true;
            }
        }
    }
    mhp
}

fn windows_mhp(pp: &ParallelProgram, start: &[u64], finish: &[u64]) -> Vec<Vec<bool>> {
    let n = pp.graph.len();
    let mut mhp = vec![vec![false; n]; n];
    for a in 0..n {
        for b in 0..n {
            if a == b || pp.schedule.assignment[a] == pp.schedule.assignment[b] {
                continue;
            }
            let overlap = start[a] < finish[b] && start[b] < finish[a];
            if overlap {
                mhp[a][b] = true;
            }
        }
    }
    mhp
}

fn contenders_from_mhp(
    pp: &ParallelProgram,
    shared_accesses: &[u64],
    mhp: &[Vec<bool>],
) -> Vec<usize> {
    contenders_from_mhp_sets(pp, shared_accesses, mhp)
}

fn contenders_from_mhp_sets(
    pp: &ParallelProgram,
    shared_accesses: &[u64],
    mhp: &[Vec<bool>],
) -> Vec<usize> {
    let n = pp.graph.len();
    (0..n)
        .map(|t| {
            let mut cores: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
            for u in 0..n {
                if mhp[t][u]
                    && shared_accesses[u] > 0
                    && pp.schedule.assignment[u] != pp.schedule.assignment[t]
                {
                    cores.insert(pp.schedule.assignment[u].0);
                }
            }
            1 + cores.len()
        })
        .collect()
}

/// The parMERASA-style bound for a *manually* parallelized fork-join
/// version of the same task graph (paper § III-C and ref \[4\]): no
/// schedule knowledge (all cores contend on every access) and a global
/// barrier after every precedence level, each barrier costing a full
/// all-core flag exchange through shared memory.
pub fn manual_fork_join_bound(
    graph: &TaskGraph,
    platform: &Platform,
    iso_wcet: &[u64],
    shared_accesses: &[u64],
) -> u64 {
    let n = graph.len();
    assert_eq!(iso_wcet.len(), n);
    assert_eq!(shared_accesses.len(), n);
    let cores = platform.core_count();
    let wc_all = platform.worst_case_shared_access(argo_adl::CoreId(0), cores);
    let wc_1 = platform.worst_case_shared_access(argo_adl::CoreId(0), 1);
    // Level = longest edge-path depth (one index build serves both the
    // topological order and the predecessor lists).
    let idx = graph.index();
    let mut level = vec![0usize; n];
    let mut max_level = 0;
    for &t in idx.topo_order() {
        let l = idx
            .preds(t)
            .iter()
            .map(|&(p, _)| level[p] + 1)
            .max()
            .unwrap_or(0);
        level[t] = l;
        max_level = max_level.max(l);
    }
    // Per level: tasks are spread over cores; the level takes at least
    // ceil(work / cores) but at most the max task; use a list bound:
    // max task + (sum - max)/cores, all with naive inflation.
    let barrier = 2 * cores as u64 * wc_all;
    let mut total = 0u64;
    for l in 0..=max_level {
        let tasks: Vec<usize> = (0..n).filter(|&t| level[t] == l).collect();
        if tasks.is_empty() {
            continue;
        }
        let inflated: Vec<u64> = tasks
            .iter()
            .map(|&t| iso_wcet[t] + shared_accesses[t].saturating_mul(wc_all.saturating_sub(wc_1)))
            .collect();
        let max = inflated.iter().copied().max().unwrap_or(0);
        let sum: u64 = inflated.iter().sum();
        let level_time = max.max(sum.div_ceil(cores as u64).max(max));
        total += level_time + barrier;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_htg::{extract::extract, Granularity};
    use argo_ir::parse::parse_program;
    use argo_sched::list::ListScheduler;
    use argo_sched::Scheduler;
    use std::collections::BTreeMap;

    /// Two independent loops + a join loop, on 2 cores.
    fn fixture() -> (ParallelProgram, Platform, Vec<u64>, Vec<u64>) {
        let src = r#"
            void main(real a[64], real b[64], real c[64], real d[64]) {
                int i;
                for (i = 0; i < 64; i = i + 1) { b[i] = a[i] * 2.0; }
                for (i = 0; i < 64; i = i + 1) { c[i] = a[i] + 1.0; }
                for (i = 0; i < 64; i = i + 1) { d[i] = b[i] + c[i]; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let mut htg = extract(&program, "main", Granularity::Loop).unwrap();
        argo_htg::accesses::annotate(
            &mut htg,
            &program,
            &argo_htg::accesses::AnnotateCtx::with_default_bound(64),
        );
        let costs: BTreeMap<_, _> = htg.top_level.iter().map(|&t| (t, 5000u64)).collect();
        let graph = TaskGraph::from_htg(&htg, &costs);
        let platform = Platform::xentium_manycore(4);
        let ctx = SchedCtx {
            platform: &platform,
            comm: CommModel::SignalOnly,
        };
        let schedule = ListScheduler::new().schedule(&graph, &ctx);
        let pp = ParallelProgram::build(program, &htg, graph, schedule, &platform).unwrap();
        let iso: Vec<u64> = pp.graph.cost.clone();
        let acc = task_shared_accesses(&htg, &pp.graph, &pp.memory_map);
        (pp, platform, iso, acc)
    }

    #[test]
    fn naive_dominates_static_dominates_windows() {
        let (pp, platform, iso, acc) = fixture();
        let naive = analyze(&pp, &platform, &iso, &acc, MhpMode::Naive);
        let stat = analyze(&pp, &platform, &iso, &acc, MhpMode::Static);
        let win = analyze(&pp, &platform, &iso, &acc, MhpMode::Windows);
        assert!(
            naive.bound >= stat.bound,
            "naive {} < static {}",
            naive.bound,
            stat.bound
        );
        assert!(
            stat.bound >= win.bound,
            "static {} < windows {}",
            stat.bound,
            win.bound
        );
    }

    #[test]
    fn bounds_never_undercut_isolated_schedule() {
        let (pp, platform, iso, acc) = fixture();
        let base = pp.schedule.makespan();
        for mode in [MhpMode::Naive, MhpMode::Static, MhpMode::Windows] {
            let r = analyze(&pp, &platform, &iso, &acc, mode);
            assert!(r.bound >= base.min(r.bound), "mode {mode}");
            // Inflated task WCETs dominate isolated ones.
            for (inflated, isolated) in r.task_wcet.iter().zip(&iso) {
                assert!(inflated >= isolated);
            }
        }
    }

    #[test]
    fn contenders_bounded_by_core_count() {
        let (pp, platform, iso, acc) = fixture();
        for mode in [MhpMode::Naive, MhpMode::Static, MhpMode::Windows] {
            let r = analyze(&pp, &platform, &iso, &acc, mode);
            for &k in &r.contenders {
                assert!(k >= 1 && k <= platform.core_count());
            }
        }
    }

    #[test]
    fn single_core_schedule_has_no_inflation_under_static_mhp() {
        let src = r#"
            void main(real a[32], real b[32]) {
                int i;
                for (i = 0; i < 32; i = i + 1) { b[i] = a[i] * 2.0; }
                for (i = 0; i < 32; i = i + 1) { a[i] = b[i] + 1.0; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let mut htg = extract(&program, "main", Granularity::Loop).unwrap();
        argo_htg::accesses::annotate(
            &mut htg,
            &program,
            &argo_htg::accesses::AnnotateCtx::with_default_bound(32),
        );
        let costs: BTreeMap<_, _> = htg.top_level.iter().map(|&t| (t, 100u64)).collect();
        let graph = TaskGraph::from_htg(&htg, &costs);
        let platform = Platform::xentium_manycore(1);
        let ctx = SchedCtx::new(&platform);
        let schedule = ListScheduler::new().schedule(&graph, &ctx);
        let iso = graph.cost.clone();
        let acc_src = task_shared_accesses(&htg, &graph, &MemoryMap::new());
        let pp = ParallelProgram::build(program, &htg, graph, schedule, &platform).unwrap();
        let r = analyze(&pp, &platform, &iso, &acc_src, MhpMode::Static);
        assert_eq!(
            r.task_wcet, r.iso_wcet,
            "nothing runs in parallel on 1 core"
        );
    }

    #[test]
    fn shared_accesses_filter_by_memory_map() {
        let (_pp, _platform, _iso, acc) = fixture();
        // The fixture's arrays are multi-core → Shared → counted.
        assert!(acc.iter().any(|&a| a > 0));
    }

    #[test]
    fn manual_fork_join_is_more_pessimistic_than_argo() {
        let (pp, platform, iso, acc) = fixture();
        let manual = manual_fork_join_bound(&pp.graph, &platform, &iso, &acc);
        let argo = analyze(&pp, &platform, &iso, &acc, MhpMode::Windows);
        assert!(
            manual > argo.bound,
            "manual {} should exceed ARGO {}",
            manual,
            argo.bound
        );
    }

    #[test]
    fn window_iteration_terminates() {
        let (pp, platform, iso, acc) = fixture();
        let r = analyze(&pp, &platform, &iso, &acc, MhpMode::Windows);
        assert!(r.iterations <= 10);
    }
}
