//! Criterion group `hot_paths`: the three inner-loop hot paths the
//! slot-resolution rework targets.
//!
//! * `interp_egpws` — interpreter statement throughput on the EGPWS
//!   kernel (slot-resolved mirror, prebuilt resolution, null hook);
//! * `value_weaa` — interval value-analysis fixpoint on the WEAA
//!   program (deepest loop nest in the use-case suite);
//! * `list_1000` — HEFT list scheduling of a synthetic 1 000-task
//!   layered DAG through the precomputed `TaskGraphIndex`;
//! * `verify_egpws` — one full post-backend verification pass (race
//!   matrix, schedule/placement checks, IR lints) on a precompiled
//!   EGPWS result — the cost every gated pipeline run pays;
//! * `store_roundtrip` — one persistent-store round trip of a
//!   precompiled EGPWS `BackendResult` (serialize, atomic write, read
//!   back, validate, deserialize) — the per-entry cost a warm-started
//!   exploration pays instead of a backend run.
//!
//! CI runs this bench with `--test` (compile + run each body once, no
//! timing), so the hot paths cannot silently rot; the timed numbers
//! feed `BENCH_hotpaths.json` via the `bench_hotpaths` binary.

use argo_adl::Platform;
use argo_ir::interp::{Interp, NullHook};
use argo_ir::resolve::Resolution;
use argo_sched::list::ListScheduler;
use argo_sched::random::{random_task_graph, RandomGraphParams};
use argo_sched::SchedCtx;
use argo_wcet::value::{loop_bounds_resolved, ValueCtx};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_interp(c: &mut Criterion) {
    let mut g = c.benchmark_group("hot_paths");
    g.sample_size(20);
    let uc = argo_apps::egpws::use_case(42);
    let resolution = Resolution::of(&uc.program);
    g.bench_function("interp_egpws", |b| {
        b.iter(|| {
            let mut interp = Interp::with_resolution(&uc.program, &resolution);
            let out = interp
                .call_full(uc.entry, black_box(uc.args.clone()), &mut NullHook)
                .expect("egpws runs");
            black_box(out.ret)
        })
    });
    g.finish();
}

fn bench_value(c: &mut Criterion) {
    let mut g = c.benchmark_group("hot_paths");
    g.sample_size(50);
    let uc = argo_apps::weaa::use_case(42);
    let resolution = Resolution::of(&uc.program);
    let ctx = ValueCtx::default();
    g.bench_function("value_weaa", |b| {
        b.iter(|| {
            let bounds =
                loop_bounds_resolved(black_box(&resolution), uc.entry, &ctx).expect("weaa bounds");
            black_box(bounds.len())
        })
    });
    g.finish();
}

fn bench_list(c: &mut Criterion) {
    let mut g = c.benchmark_group("hot_paths");
    g.sample_size(10);
    let graph = random_task_graph(
        7,
        &RandomGraphParams {
            tasks: 1000,
            layers: 25,
            ..Default::default()
        },
    );
    let platform = Platform::xentium_manycore(4);
    let ctx = SchedCtx::new(&platform);
    g.bench_function("list_1000", |b| {
        let idx = graph.index();
        b.iter(|| {
            black_box(
                ListScheduler::new()
                    .schedule_indexed(black_box(&graph), &idx, &ctx)
                    .makespan(),
            )
        })
    });
    g.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("hot_paths");
    g.sample_size(20);
    let uc = argo_apps::egpws::use_case(42);
    let platform = Platform::xentium_manycore(4);
    let result = argo_core::Toolflow::borrowed(&uc.program, uc.entry)
        .platform(&platform)
        .run()
        .expect("egpws compiles");
    let cfg = argo_verify::VerifyConfig::default();
    g.bench_function("verify_egpws", |b| {
        b.iter(|| {
            let report = argo_verify::verify_backend(black_box(&result), &platform, &cfg);
            black_box(report.findings.len())
        })
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("hot_paths");
    g.sample_size(20);
    let uc = argo_apps::egpws::use_case(42);
    let platform = Platform::xentium_manycore(4);
    let result = argo_core::Toolflow::borrowed(&uc.program, uc.entry)
        .platform(&platform)
        .run()
        .expect("egpws compiles");
    let dir = std::env::temp_dir().join(format!("argo-hot-paths-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = argo_store::Store::open(&dir).expect("store opens");
    let key = argo_core::Fingerprint(0xbe9c);
    g.bench_function("store_roundtrip", |b| {
        b.iter(|| {
            store.put_artifact("bench", key, black_box(&result));
            let back = store
                .get_artifact::<argo_core::BackendResult>("bench", key)
                .expect("entry reads back");
            black_box(back.system.bound)
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    hot_paths,
    bench_interp,
    bench_value,
    bench_list,
    bench_verify,
    bench_store
);
criterion_main!(hot_paths);
