//! Criterion benches over the experiment drivers (EXPERIMENTS.md).
//!
//! Each group measures the runtime of one tool-chain component on the
//! POLKA use case / random graphs, so regressions in the analyses and
//! schedulers are caught. The table-generating experiment binaries
//! (`cargo run -p argo-bench --bin eN_... --release`) produce the actual
//! evaluation numbers.

use argo_adl::Platform;
use argo_core::{ToolchainConfig, Toolflow};
use argo_sched::anneal::SimulatedAnnealing;
use argo_sched::bnb::BranchAndBound;
use argo_sched::list::ListScheduler;
use argo_sched::random::{random_task_graph, RandomGraphParams};
use argo_sched::{SchedCtx, Scheduler};
use argo_sim::{simulate, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_toolchain(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_toolflow");
    g.sample_size(10);
    let uc = &argo_apps::all_use_cases(42)[2]; // POLKA
    let platform = Platform::xentium_manycore(4);
    g.bench_function("compile_polka_4core", |b| {
        b.iter(|| {
            let r = Toolflow::new(black_box(uc.program.clone()), uc.entry)
                .platform(&platform)
                .config(ToolchainConfig::default())
                .run()
                .unwrap();
            black_box(r.system.bound)
        })
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    let uc = &argo_apps::all_use_cases(42)[2];
    let platform = Platform::xentium_manycore(4);
    let r = Toolflow::new(uc.program.clone(), uc.entry)
        .platform(&platform)
        .config(ToolchainConfig::default())
        .run()
        .unwrap();
    g.bench_function("simulate_polka_4core", |b| {
        b.iter(|| {
            let s = simulate(
                &r.parallel,
                &platform,
                black_box(uc.args.clone()),
                &SimConfig::default(),
            )
            .unwrap();
            black_box(s.cycles)
        })
    });
    g.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_schedulers");
    g.sample_size(10);
    let platform = Platform::xentium_manycore(4);
    let ctx = SchedCtx::new(&platform);
    let graph = random_task_graph(
        1,
        &RandomGraphParams {
            tasks: 12,
            ..Default::default()
        },
    );
    g.bench_function("list_12", |b| {
        b.iter(|| {
            black_box(
                ListScheduler::new()
                    .schedule(black_box(&graph), &ctx)
                    .makespan(),
            )
        })
    });
    g.bench_function("bnb_12", |b| {
        b.iter(|| {
            black_box(
                BranchAndBound::new()
                    .schedule(black_box(&graph), &ctx)
                    .makespan(),
            )
        })
    });
    g.bench_function("anneal_12", |b| {
        b.iter(|| {
            black_box(
                SimulatedAnnealing::with_seed(1)
                    .schedule(black_box(&graph), &ctx)
                    .makespan(),
            )
        })
    });
    g.finish();
}

fn bench_wcet(c: &mut Criterion) {
    let mut g = c.benchmark_group("wcet");
    g.sample_size(10);
    let uc = argo_apps::egpws::use_case(42);
    let platform = Platform::xentium_manycore(1);
    let mem = argo_adl::MemoryMap::new();
    let bounds = argo_wcet::value::loop_bounds(&uc.program, uc.entry, &Default::default()).unwrap();
    g.bench_function("schema_egpws", |b| {
        b.iter(|| {
            let ctx =
                argo_wcet::cost::CostCtx::new(&uc.program, &platform, argo_adl::CoreId(0), 1, &mem);
            black_box(argo_wcet::schema::function_wcets(&ctx, &bounds).unwrap())
        })
    });
    g.bench_function("ipet_egpws", |b| {
        let ctx =
            argo_wcet::cost::CostCtx::new(&uc.program, &platform, argo_adl::CoreId(0), 1, &mem);
        let fw = argo_wcet::schema::function_wcets(&ctx, &bounds).unwrap();
        b.iter(|| {
            black_box(argo_wcet::ipet::function_wcet_ipet(&ctx, &bounds, &fw, uc.entry).unwrap())
        })
    });
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    use argo_core::SchedulerKind;
    use argo_dse::{DesignSpace, Explorer, PlatformKind};

    let mut g = c.benchmark_group("e9_search");
    g.sample_size(10);
    let space = DesignSpace::new()
        .app("polka")
        .platforms(vec![PlatformKind::Bus, PlatformKind::Noc])
        .cores(vec![1, 2, 4])
        .schedulers(vec![SchedulerKind::List, SchedulerKind::Anneal])
        .spm_capacities(vec![None, Some(4096)]);
    // One explorer per group: the measured quantity is steered-search
    // overhead on a warm artifact cache (the designer-iteration case).
    let explorer = Explorer::new();
    explorer.explore(&space);
    for strategy in argo_search::all_strategies() {
        g.bench_function(&format!("{}_24pt_quarter", strategy.name()), |b| {
            b.iter(|| {
                let report = explorer.search(
                    black_box(&space),
                    strategy.as_ref(),
                    argo_search::Budget::evaluations(6),
                );
                black_box(report.pareto.len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_toolchain,
    bench_simulator,
    bench_schedulers,
    bench_wcet,
    bench_search
);
criterion_main!(benches);
