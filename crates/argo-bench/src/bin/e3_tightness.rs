//! Experiment binary: prints the e3_tightness table (see EXPERIMENTS.md).
fn main() {
    print!("{}", argo_bench::e3_tightness());
}
