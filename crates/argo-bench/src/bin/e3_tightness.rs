//! E3: system-level WCET bound per MHP precision mode vs simulator
//! observation, on POLKA and a pipelined synthetic workload.
use std::process::ExitCode;

fn main() -> ExitCode {
    argo_bench::run_binary("e3_tightness", argo_bench::e3_tightness)
}
