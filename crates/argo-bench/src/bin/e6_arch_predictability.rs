//! E6: architecture-predictability ablation (§ III-B guidelines) —
//! bound and tightness across arbitration policies and cache vs SPM.
use std::process::ExitCode;

fn main() -> ExitCode {
    argo_bench::run_binary("e6_arch_predictability", argo_bench::e6_arch_predictability)
}
