//! Experiment binary: prints the e6_arch_predictability table (see EXPERIMENTS.md).
fn main() {
    print!("{}", argo_bench::e6_arch_predictability());
}
