//! E2: guaranteed WCET speedup vs core count, per use case.
//!
//! Optional argument: comma-separated core counts (default `1,2,4,8,16`),
//! e.g. `e2_wcet_speedup 1,2,4`.
use std::process::ExitCode;

fn main() -> ExitCode {
    let cores = argo_bench::parse_list_arg("e2_wcet_speedup [cores,...]", &[1, 2, 4, 8, 16]);
    argo_bench::run_binary("e2_wcet_speedup", move || {
        argo_bench::e2_wcet_speedup(&cores)
    })
}
