//! Experiment binary: prints the e2_wcet_speedup table (see EXPERIMENTS.md).
fn main() {
    print!("{}", argo_bench::e2_wcet_speedup(&[1,2,4,8,16]));
}
