//! **E13 — chaos replay**: the e10 traffic pattern replayed against a
//! daemon whose store runs on a seeded fault-injection backend
//! ([`argo_chaos::ChaosIo`]), plus a panic-isolation phase and a
//! drain/restart phase over a shared store.
//!
//! Three phases, each with hard invariants (any violation panics, so
//! the driver exits non-zero):
//!
//! 1. **faulty** — N retrying clients × R rounds of the D distinct
//!    compile requests against an io-storm store (write/torn/rename/
//!    read errors + latency). Every reply must be `ok` and
//!    byte-identical to a fault-free reference daemon's reply: injected
//!    store faults may only surface as counted misses, never as wrong
//!    data, an unstructured failure, or a daemon crash.
//! 2. **panic isolation** — a store that injects read-path panics. Each
//!    injected panic must come back as exactly one structured
//!    `internal-error` frame; everything else stays byte-identical, and
//!    the daemon keeps serving afterwards.
//! 3. **restart** — traffic through a `RetryClient` spanning a graceful
//!    drain of daemon A and a warm boot of daemon B on the same Unix
//!    socket and store directory. The retried replies must be
//!    byte-identical to daemon A's, and daemon B must answer them
//!    without a single pipeline stage (100% warm-start archive hits).
//!
//! ```text
//! e13_chaos [--clients N] [--rounds R] [--seed S] [--rate PERMILLE] [--merge PATH]
//! ```
//!
//! `--merge` appends/replaces `e13_chaos_faulty` / `e13_chaos_restart`
//! rows in a `bench_hotpaths` output file, preserving every other row.

use argo_chaos::{ChaosIo, FaultPlan};
use argo_serve::{
    Client, Listener, RetryClient, RetryPolicy, ServeConfig, Server, ServerHandle, Value,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The D distinct requests of the trace (same shape as e10).
fn distinct_requests() -> Vec<String> {
    let mut requests = Vec::new();
    for cores in [2usize, 4] {
        for scheduler in ["list", "anneal"] {
            requests.push(format!(
                "{{\"id\": 1, \"kind\": \"compile\", \"app\": \"egpws\", \
                 \"cores\": {cores}, \"scheduler\": \"{scheduler}\"}}"
            ));
        }
    }
    requests
}

/// Boots an in-process daemon over `store` (TCP on an OS port).
fn boot_tcp(store: argo_store::Store) -> ServerHandle {
    let explorer = argo_dse::Explorer::with_threads(2).with_store(Arc::new(store));
    Server::start(
        Listener::tcp("127.0.0.1:0").expect("bind"),
        explorer,
        ServeConfig::default(),
    )
    .expect("server starts")
}

fn shutdown_tcp(server: ServerHandle) {
    let mut client = Client::connect_tcp(server.addr()).expect("connect for shutdown");
    let _ = client.request(r#"{"id": 0, "kind": "shutdown"}"#);
    server.join();
}

/// The error code of an error frame, if `line` is one.
fn error_code(line: &str) -> Option<String> {
    if !line.starts_with("{\"frame\":\"error\"") {
        return None;
    }
    let frame = Value::parse(line).ok()?;
    Some(
        frame
            .get("error")?
            .get("code")?
            .as_str()
            .unwrap_or("<non-string code>")
            .to_string(),
    )
}

/// Fault-free reference bodies: request line → terminal frame line.
fn reference_bodies(requests: &[String]) -> Vec<String> {
    let dir = std::env::temp_dir().join(format!("argo-e13-ref-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = argo_store::Store::open(&dir).expect("reference store opens");
    let server = boot_tcp(store);
    let mut client = Client::connect_tcp(server.addr()).expect("reference client");
    let bodies = requests
        .iter()
        .map(|request| {
            let reply = client.request(request).expect("reference roundtrip");
            assert!(
                reply.is_ok(),
                "reference request failed: {}",
                reply.terminal
            );
            reply.terminal
        })
        .collect();
    drop(client);
    shutdown_tcp(server);
    let _ = std::fs::remove_dir_all(&dir);
    bodies
}

struct PassReport {
    requests: usize,
    wall_ns: u64,
    p50_ns: u64,
    p99_ns: u64,
}

impl PassReport {
    fn of(latencies: &mut [u64], wall_ns: u64) -> PassReport {
        latencies.sort_unstable();
        let n = latencies.len();
        PassReport {
            requests: n,
            wall_ns,
            p50_ns: latencies[n / 2],
            p99_ns: latencies[(n * 99 / 100).min(n - 1)],
        }
    }

    fn throughput(&self) -> f64 {
        self.requests as f64 / (self.wall_ns as f64 * 1e-9)
    }

    fn print(&self, label: &str, detail: &str) {
        println!(
            "{label}: {} requests in {:.1} ms   p50 {:.1} us   p99 {:.1} us   \
             throughput {:.1} req/s   {detail}",
            self.requests,
            self.wall_ns as f64 / 1e6,
            self.p50_ns as f64 / 1e3,
            self.p99_ns as f64 / 1e3,
            self.throughput(),
        );
    }
}

/// Phase 1: concurrent retrying clients against an io-storm store.
/// Returns the latency report. Panics on any wrong-data event.
fn faulty_phase(
    requests: &[String],
    reference: &[String],
    clients: usize,
    rounds: usize,
    seed: u64,
    rate: u16,
) -> PassReport {
    let dir = std::env::temp_dir().join(format!("argo-e13-faulty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let io = Arc::new(ChaosIo::new(FaultPlan {
        latency_sleep: Duration::from_micros(200),
        ..FaultPlan::io_storm(seed, rate)
    }));
    let store = argo_store::Store::open_with_io(&dir, io.clone() as Arc<dyn argo_store::IoBackend>)
        .expect("chaos store opens");
    let server = boot_tcp(store);
    let addr = server.addr().to_string();

    let t0 = Instant::now();
    let all: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = &addr;
                scope.spawn(move || {
                    let mut client = RetryClient::tcp(
                        addr,
                        RetryPolicy {
                            seed: seed ^ c as u64,
                            ..RetryPolicy::default()
                        },
                    );
                    let mut latencies = Vec::new();
                    for _ in 0..rounds {
                        for (i, request) in requests.iter().enumerate() {
                            let t = Instant::now();
                            let reply = client.request(request).expect("chaos roundtrip");
                            latencies.push(t.elapsed().as_nanos() as u64);
                            // Zero tolerance: under a no-panic storm,
                            // every reply is ok and byte-identical.
                            assert_eq!(
                                reply.terminal, reference[i],
                                "wrong data under chaos (client {c})"
                            );
                        }
                    }
                    latencies
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let mut latencies: Vec<u64> = all.into_iter().flatten().collect();

    // The daemon is alive and the store shows the faults as counted
    // misses/write-errors, not as anything the client could observe.
    let mut client = Client::connect_tcp(&addr).expect("post-chaos stats connect");
    let reply = client
        .request(r#"{"id": 0, "kind": "stats"}"#)
        .expect("daemon alive after chaos");
    assert!(reply.is_ok(), "stats after chaos: {}", reply.terminal);
    let injected = io.injected();
    assert!(
        injected.total() > 0,
        "the storm injected nothing — rate {rate} too low for this trace"
    );
    drop(client);
    shutdown_tcp(server);
    let _ = std::fs::remove_dir_all(&dir);

    let report = PassReport::of(&mut latencies, wall_ns);
    println!(
        "faulty: injected faults: {} write, {} torn, {} rename, {} read, {} delayed \
         — all absorbed",
        injected.write_errors,
        injected.torn_writes,
        injected.rename_errors,
        injected.read_errors,
        injected.latencies
    );
    report
}

/// Phase 2: a read-path panic store. One sequential client; every
/// injected panic must surface as exactly one `internal-error` frame.
fn panic_phase(requests: &[String], reference: &[String], rounds: usize, seed: u64) {
    let dir = std::env::temp_dir().join(format!("argo-e13-panic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let io = Arc::new(ChaosIo::new(FaultPlan {
        panic: 400,
        ..FaultPlan::quiet(seed)
    }));
    let store = argo_store::Store::open_with_io(&dir, io.clone() as Arc<dyn argo_store::IoBackend>)
        .expect("panic store opens");
    let server = boot_tcp(store);
    let mut client = Client::connect_tcp(server.addr()).expect("panic-phase client");

    let mut by_code: BTreeMap<String, u64> = BTreeMap::new();
    let mut ok = 0u64;
    for _ in 0..rounds {
        for (i, request) in requests.iter().enumerate() {
            let reply = client.request(request).expect("panic-phase roundtrip");
            match error_code(&reply.terminal) {
                Some(code) => {
                    assert!(
                        code == "internal-error" || code == "leader-failed",
                        "unexpected error class under panic injection: {}",
                        reply.terminal
                    );
                    *by_code.entry(code).or_default() += 1;
                }
                None => {
                    assert_eq!(
                        reply.terminal, reference[i],
                        "wrong data under panic injection"
                    );
                    ok += 1;
                }
            }
        }
    }
    let errors: u64 = by_code.values().sum();
    let injected = io.injected().panics;
    assert_eq!(
        errors, injected,
        "each injected panic must yield exactly one structured error frame"
    );

    // Still serving: the panics were isolated per request.
    let reply = client
        .request(r#"{"id": 0, "kind": "stats"}"#)
        .expect("daemon alive after panics");
    assert!(reply.is_ok());
    drop(client);
    shutdown_tcp(server);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "panic : {injected} injected panics -> {errors} structured error frames \
         ({} ok replies, zero crashes)",
        ok
    );
}

/// Phase 3 (Unix only): a retrying client rides out a graceful drain
/// of daemon A and a warm restart as daemon B on the same socket path
/// and store directory. Returns the replay latency report.
#[cfg(unix)]
fn restart_phase(requests: &[String], seed: u64) -> PassReport {
    let dir = std::env::temp_dir().join(format!("argo-e13-restart-{}", std::process::id()));
    let sock = std::env::temp_dir().join(format!("argo-e13-{}.sock", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sock_str = sock.to_str().expect("utf-8 socket path").to_string();

    let boot = |dir: &std::path::Path| {
        let store = argo_store::Store::open(dir).expect("restart store opens");
        let explorer = argo_dse::Explorer::with_threads(2).with_store(Arc::new(store));
        Server::start(
            Listener::unix(&sock_str).expect("bind unix"),
            explorer,
            ServeConfig::default(),
        )
        .expect("server starts")
    };

    // Daemon A: cold pass, recording the canonical bodies.
    let server_a = boot(&dir);
    let mut client = Client::connect_unix(&sock_str).expect("cold client");
    let cold: Vec<String> = requests
        .iter()
        .map(|request| {
            let reply = client.request(request).expect("cold roundtrip");
            assert!(reply.is_ok(), "cold request failed: {}", reply.terminal);
            reply.terminal
        })
        .collect();
    drop(client);

    // Replay through a RetryClient while A drains and B boots. The
    // drain window hands out transport errors (EOF/refused) and
    // `shutting-down` frames; both must resolve to byte-identical
    // replies once B is up.
    let t0 = Instant::now();
    let (latencies, server_b) = std::thread::scope(|scope| {
        let replayer = scope.spawn(|| {
            let mut client = RetryClient::unix(
                &sock_str,
                RetryPolicy {
                    attempts: 60,
                    base: Duration::from_millis(5),
                    cap: Duration::from_millis(100),
                    seed,
                },
            );
            let mut latencies = Vec::new();
            for (i, request) in requests.iter().enumerate() {
                let t = Instant::now();
                loop {
                    let reply = client.request(request).expect("replay roundtrip");
                    // A terminal `shutting-down` frame is the drain
                    // talking; resend until the fresh daemon answers.
                    if error_code(&reply.terminal).as_deref() == Some("shutting-down") {
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                    assert_eq!(
                        reply.terminal, cold[i],
                        "retried reply across restart must be byte-identical"
                    );
                    break;
                }
                latencies.push(t.elapsed().as_nanos() as u64);
            }
            latencies
        });
        // Drain A mid-replay, then boot B over the same socket + store.
        std::thread::sleep(Duration::from_millis(10));
        server_a.shutdown();
        server_a.join();
        let server_b = boot(&dir);
        (replayer.join().unwrap(), server_b)
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;

    // Warm start: B answered every replayed request from the archive.
    let mut client = Client::connect_unix(&sock_str).expect("warm stats client");
    let reply = client
        .request(r#"{"id": 0, "kind": "stats"}"#)
        .expect("stats roundtrip");
    let frame = reply.frame().expect("stats frame parses");
    let stages = frame
        .get("result")
        .and_then(|r| r.get("stages"))
        .expect("stages");
    let backend_runs = stages
        .get("backend_runs")
        .and_then(Value::as_u64)
        .unwrap_or(u64::MAX);
    assert_eq!(
        backend_runs, 0,
        "daemon B must warm-start: zero pipeline stages on the replay"
    );
    let _ = client.request(r#"{"id": 0, "kind": "shutdown"}"#);
    drop(client);
    server_b.join();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&sock);

    let mut latencies = latencies;
    PassReport::of(&mut latencies, wall_ns)
}

/// Inserts (or replaces) the e13 rows in a `bench_hotpaths` JSON file,
/// preserving every other row byte-for-byte.
fn merge_rows(path: &str, faulty: &PassReport, restart: Option<&PassReport>) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let mut lines: Vec<String> = text
        .lines()
        .filter(|line| !line.trim_start().starts_with("\"e13_chaos_"))
        .map(str::to_string)
        .collect();
    let close = lines
        .iter()
        .position(|line| line == "  }")
        .unwrap_or_else(|| panic!("{path} is not a bench_hotpaths output"));
    let last = &mut lines[close - 1];
    if last.ends_with('}') {
        last.push(',');
    }
    let row = |name: &str, pass: &PassReport, tail: &str| {
        format!(
            "    \"{name}\": {{\"median_ns\": {}, \"items\": {}, \"unit\": \"requests\", \
             \"throughput_per_s\": {:.1}, \"p99_ns\": {}}}{tail}",
            pass.p50_ns,
            pass.requests,
            pass.throughput(),
            pass.p99_ns
        )
    };
    let mut rows = Vec::new();
    match restart {
        Some(restart) => {
            rows.push(row("e13_chaos_faulty", faulty, ","));
            rows.push(row("e13_chaos_restart", restart, ""));
        }
        None => rows.push(row("e13_chaos_faulty", faulty, "")),
    }
    lines.splice(close..close, rows);
    let mut out = lines.join("\n");
    out.push('\n');
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("merged e13 rows into {path}");
}

fn main() {
    let mut clients = 3usize;
    let mut rounds = 3usize;
    let mut seed = 7u64;
    let mut rate = 150u16;
    let mut merge: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--clients" => clients = args.next().expect("--clients N").parse().expect("number"),
            "--rounds" => rounds = args.next().expect("--rounds R").parse().expect("number"),
            "--seed" => seed = args.next().expect("--seed S").parse().expect("number"),
            "--rate" => {
                rate = args
                    .next()
                    .expect("--rate PERMILLE")
                    .parse()
                    .expect("number")
            }
            "--merge" => merge = Some(args.next().expect("--merge PATH")),
            other => {
                eprintln!(
                    "usage: e13_chaos [--clients N] [--rounds R] [--seed S] \
                     [--rate PERMILLE] [--merge PATH]"
                );
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let requests = distinct_requests();
    println!(
        "e13_chaos: {clients} clients × {rounds} rounds × {} distinct requests, \
         seed {seed}, storm rate {rate}‰",
        requests.len()
    );

    let reference = reference_bodies(&requests);
    let faulty = faulty_phase(&requests, &reference, clients, rounds, seed, rate);
    faulty.print("faulty", "zero wrong-data events, zero crashes");
    panic_phase(&requests, &reference, rounds, seed);

    #[cfg(unix)]
    let restart = Some(restart_phase(&requests, seed));
    #[cfg(not(unix))]
    let restart: Option<PassReport> = None;
    if let Some(restart) = &restart {
        restart.print(
            "restart",
            "byte-identical across drain + warm boot, zero pipeline stages on replay",
        );
    }

    if let Some(path) = merge {
        merge_rows(&path, &faulty, restart.as_ref());
    }
    println!("e13_chaos: all chaos invariants held");
}
