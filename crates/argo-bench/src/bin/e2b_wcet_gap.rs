//! Experiment binary: prints the E2b average-vs-worst gap table.
fn main() {
    print!("{}", argo_bench::e2b_wcet_gap());
}
