//! E2b: worst-case bound vs average observed cycles per use case — the
//! § I "tightness" motivation.
use std::process::ExitCode;

fn main() -> ExitCode {
    argo_bench::run_binary("e2b_wcet_gap", argo_bench::e2b_wcet_gap)
}
