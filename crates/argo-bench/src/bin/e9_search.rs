//! E9: search-vs-exhaustive Pareto-front quality (budgeted strategies
//! from `argo-search` racing the full sweep).

fn main() -> std::process::ExitCode {
    argo_bench::run_binary("e9_search", argo_bench::e9_search_quality)
}
