//! E4: scheduler ablation (list vs branch-and-bound vs annealing) on
//! random layered DAGs, parallelized over the `argo-dse` executor.
//!
//! Optional argument: comma-separated DAG sizes (default
//! `6,8,10,12,16,24`), e.g. `e4_sched_ablation 8,16`.
use std::process::ExitCode;

fn main() -> ExitCode {
    let sizes =
        argo_bench::parse_list_arg("e4_sched_ablation [tasks,...]", &[6, 8, 10, 12, 16, 24]);
    argo_bench::run_binary("e4_sched_ablation", move || {
        argo_bench::e4_sched_ablation(&sizes)
    })
}
