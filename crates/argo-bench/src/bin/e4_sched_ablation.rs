//! Experiment binary: prints the e4_sched_ablation table (see EXPERIMENTS.md).
fn main() {
    print!("{}", argo_bench::e4_sched_ablation(&[6,8,10,12,16,24]));
}
