//! Experiment binary: prints the e8_parmerasa table (see EXPERIMENTS.md).
fn main() {
    print!("{}", argo_bench::e8_parmerasa());
}
