//! E8: manual fork-join WCET (parMERASA-style, ref \[4\]) vs ARGO's
//! schedule-aware bound — quantifies what schedule knowledge buys.
use std::process::ExitCode;

fn main() -> ExitCode {
    argo_bench::run_binary("e8_parmerasa", argo_bench::e8_parmerasa)
}
