//! E5: WCET-directed scratchpad allocation — bound vs SPM capacity,
//! swept as an `argo-dse` design space on EGPWS.
//!
//! Optional argument: comma-separated capacities in bytes (default
//! `0,2048,4096,8192,16384,32768,65536`), e.g. `e5_spm 0,4096`.
use std::process::ExitCode;

fn main() -> ExitCode {
    let caps = argo_bench::parse_list_arg(
        "e5_spm [bytes,...]",
        &[0, 2048, 4096, 8192, 16384, 32768, 65536],
    );
    argo_bench::run_binary("e5_spm", move || argo_bench::e5_spm(&caps))
}
