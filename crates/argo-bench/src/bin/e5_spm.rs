//! Experiment binary: prints the e5_spm table (see EXPERIMENTS.md).
fn main() {
    print!("{}", argo_bench::e5_spm(&[0,2048,4096,8192,16384,32768,65536]));
}
