//! Machine-readable hot-path benchmark harness → `BENCH_hotpaths.json`.
//!
//! Times the inner-loop hot paths of the tool-chain (interpreter
//! statement execution, value-analysis fixpoint, list scheduling, one
//! full post-backend verification pass, one persistent-store round
//! trip of a `BackendResult`, one hot `argo-serve` request/response
//! roundtrip over a local socket) plus the end-to-end e1/e2
//! experiment wall time, and writes one JSON file
//! with `median_ns` and a derived throughput per bench. When a baseline
//! file is given (`--baseline PATH`, a previous output of this harness),
//! each bench also records `before_median_ns` and the resulting
//! `speedup`, so the perf trajectory of the repo is recorded as data
//! instead of prose.
//!
//! Usage:
//!
//! ```text
//! bench_hotpaths [--out PATH] [--baseline PATH] [--samples N]
//! ```
//!
//! Defaults: `--out BENCH_hotpaths.json`, no baseline, 15 samples for
//! the micro benches (5 for the end-to-end drivers).

use argo_ir::interp::{CountingHook, Interp, NullHook};
use argo_sched::list::ListScheduler;
use argo_sched::random::{random_task_graph, RandomGraphParams};
use argo_sched::{SchedCtx, Scheduler};
use argo_wcet::value::{loop_bounds, ValueCtx};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured bench: median wall time and items processed per run.
struct BenchRow {
    name: &'static str,
    median_ns: u64,
    /// Work items per run (statements, loops, tasks, …).
    items: u64,
    /// Unit of `items` for the throughput field.
    unit: &'static str,
}

fn median_ns(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_n<F: FnMut()>(samples: usize, mut f: F) -> u64 {
    f(); // warm-up
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        out.push(t0.elapsed().as_nanos() as u64);
    }
    median_ns(&mut out)
}

fn bench_interp_egpws(samples: usize) -> BenchRow {
    let uc = argo_apps::egpws::use_case(42);
    // Steady state: the resolution is a cached frontend artifact, so
    // the measured quantity is pure statement execution.
    let resolution = argo_ir::resolve::Resolution::of(&uc.program);
    // Count statements once (workload size for the throughput figure).
    let mut counter = CountingHook::default();
    Interp::with_resolution(&uc.program, &resolution)
        .call_full(uc.entry, uc.args.clone(), &mut counter)
        .expect("egpws runs");
    let median = time_n(samples, || {
        let mut interp = Interp::with_resolution(&uc.program, &resolution);
        let out = interp
            .call_full(uc.entry, uc.args.clone(), &mut NullHook)
            .expect("egpws runs");
        std::hint::black_box(out.ret);
    });
    BenchRow {
        name: "interp_egpws",
        median_ns: median,
        items: counter.stmts,
        unit: "stmts",
    }
}

fn bench_value_weaa(samples: usize) -> BenchRow {
    let uc = argo_apps::weaa::use_case(42);
    let ctx = ValueCtx::default();
    let resolution = argo_ir::resolve::Resolution::of(&uc.program);
    let bounds = loop_bounds(&uc.program, uc.entry, &ctx).expect("weaa bounds");
    let median = time_n(samples, || {
        let b = argo_wcet::value::loop_bounds_resolved(&resolution, uc.entry, &ctx)
            .expect("weaa bounds");
        std::hint::black_box(b.len());
    });
    BenchRow {
        name: "value_weaa",
        median_ns: median,
        items: bounds.len() as u64,
        unit: "loops",
    }
}

fn bench_list_1000(samples: usize) -> BenchRow {
    let params = RandomGraphParams {
        tasks: 1000,
        layers: 25,
        ..Default::default()
    };
    let g = random_task_graph(7, &params);
    let platform = argo_adl::Platform::xentium_manycore(4);
    let ctx = SchedCtx::new(&platform);
    let median = time_n(samples, || {
        let s = ListScheduler::new().schedule(&g, &ctx);
        std::hint::black_box(s.makespan());
    });
    BenchRow {
        name: "sched_list_1000",
        median_ns: median,
        items: g.len() as u64,
        unit: "tasks",
    }
}

fn bench_verify(samples: usize) -> BenchRow {
    // Steady state: the pipeline result is compiled once outside the
    // timer; the measured quantity is one full verification pass
    // (race matrix, schedule/placement checks, IR lints).
    let uc = argo_apps::egpws::use_case(42);
    let platform = argo_adl::Platform::xentium_manycore(4);
    let result = argo_core::Toolflow::borrowed(&uc.program, uc.entry)
        .platform(&platform)
        .run()
        .expect("egpws compiles");
    let cfg = argo_verify::VerifyConfig::default();
    let tasks = result.parallel.graph.len() as u64;
    let median = time_n(samples, || {
        let report = argo_verify::verify_backend(&result, &platform, &cfg);
        std::hint::black_box(report.findings.len());
    });
    BenchRow {
        name: "verify_egpws",
        median_ns: median,
        items: tasks,
        unit: "tasks",
    }
}

fn bench_store_roundtrip(samples: usize) -> BenchRow {
    // Steady state: the pipeline result is compiled once outside the
    // timer; the measured quantity is one full persistent-store round
    // trip of a `BackendResult` — serialize, atomic write (tmp +
    // rename + fsync), read back, validate (magic/version/checksum/
    // content fingerprint) and deserialize. This is the per-entry cost
    // a warm-started exploration pays instead of a backend run.
    let uc = argo_apps::egpws::use_case(42);
    let platform = argo_adl::Platform::xentium_manycore(4);
    let result = argo_core::Toolflow::borrowed(&uc.program, uc.entry)
        .platform(&platform)
        .run()
        .expect("egpws compiles");
    let bytes = argo_core::codec::Codec::to_bytes(&result).len() as u64;
    let dir = std::env::temp_dir().join(format!("argo-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = argo_store::Store::open(&dir).expect("store opens");
    let key = argo_core::Fingerprint(0xbe9c);
    let median = time_n(samples, || {
        store.put_artifact("bench", key, &result);
        let back = store
            .get_artifact::<argo_core::BackendResult>("bench", key)
            .expect("entry reads back");
        std::hint::black_box(back.system.bound);
    });
    let _ = std::fs::remove_dir_all(&dir);
    BenchRow {
        name: "store_roundtrip",
        median_ns: median,
        items: bytes,
        unit: "bytes",
    }
}

fn bench_serve_roundtrip(samples: usize) -> BenchRow {
    // Steady state: an in-process `argo-serve` daemon over a populated
    // store; the warm-up request fills the point archive, so the
    // measured quantity is one local-socket request → cached-response
    // roundtrip (wire parse, single-flight entry, archive read,
    // response emit) — the latency a hot client pays per request.
    let dir = std::env::temp_dir().join(format!("argo-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = argo_store::Store::open(&dir).expect("store opens");
    let explorer = argo_dse::Explorer::with_threads(2).with_store(std::sync::Arc::new(store));
    let server = argo_serve::Server::start(
        argo_serve::Listener::tcp("127.0.0.1:0").expect("bind"),
        explorer,
        argo_serve::ServeConfig::default(),
    )
    .expect("server starts");
    let mut client = argo_serve::Client::connect_tcp(server.addr()).expect("connect");
    let request = r#"{"id": 1, "kind": "compile", "app": "egpws", "cores": 2}"#;
    let median = time_n(samples, || {
        let reply = client.request(request).expect("roundtrip");
        assert!(reply.is_ok(), "{}", reply.terminal);
        std::hint::black_box(reply.terminal.len());
    });
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
    BenchRow {
        name: "serve_roundtrip",
        median_ns: median,
        items: 1,
        unit: "requests",
    }
}

fn bench_e1(samples: usize) -> BenchRow {
    let median = time_n(samples, || {
        std::hint::black_box(argo_bench::e1_toolflow().len());
    });
    BenchRow {
        name: "e1_toolflow",
        median_ns: median,
        items: 3,
        unit: "use-cases",
    }
}

fn bench_e2(samples: usize) -> BenchRow {
    let median = time_n(samples, || {
        std::hint::black_box(argo_bench::e2_wcet_speedup(&[1, 2, 4]).len());
    });
    BenchRow {
        name: "e2_wcet_speedup",
        median_ns: median,
        items: 9,
        unit: "compiles",
    }
}

/// Extracts `"median_ns": N` for `bench` from a previous harness output
/// (good enough for the fixed format this harness itself writes).
fn baseline_median(baseline: &str, bench: &str) -> Option<u64> {
    let key = format!("\"{bench}\"");
    let obj = &baseline[baseline.find(&key)? + key.len()..];
    let obj = &obj[..obj.find('}')?];
    let field = "\"median_ns\": ";
    let v = &obj[obj.find(field)? + field.len()..];
    let end = v.find(|c: char| !c.is_ascii_digit())?;
    v[..end].parse().ok()
}

fn main() {
    let mut out_path = String::from("BENCH_hotpaths.json");
    let mut baseline_path: Option<String> = None;
    let mut samples = 15usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out PATH"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline PATH")),
            "--samples" => samples = args.next().expect("--samples N").parse().expect("number"),
            other => {
                eprintln!("usage: bench_hotpaths [--out PATH] [--baseline PATH] [--samples N]");
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let baseline = baseline_path.map(|p| std::fs::read_to_string(&p).expect("readable baseline"));

    let e2e_samples = samples.div_ceil(3).max(3);
    let rows = [
        bench_interp_egpws(samples),
        bench_value_weaa(samples),
        bench_list_1000(samples),
        bench_verify(samples),
        bench_store_roundtrip(samples),
        bench_serve_roundtrip(samples),
        bench_e1(e2e_samples),
        bench_e2(e2e_samples),
    ];

    let mut json = String::from("{\n  \"schema\": \"argo-bench/hotpaths-v1\",\n  \"benches\": {\n");
    let mut regressions: Vec<(&str, f64)> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let per_s = row.items as f64 / (row.median_ns as f64 * 1e-9);
        let _ = write!(
            json,
            "    \"{}\": {{\"median_ns\": {}, \"items\": {}, \"unit\": \"{}\", \
             \"throughput_per_s\": {:.1}",
            row.name, row.median_ns, row.items, row.unit, per_s
        );
        if let Some(before) = baseline
            .as_deref()
            .and_then(|b| baseline_median(b, row.name))
        {
            let speedup = before as f64 / row.median_ns.max(1) as f64;
            let _ = write!(
                json,
                ", \"before_median_ns\": {before}, \"speedup\": {speedup:.2}"
            );
            if speedup < 0.9 {
                regressions.push((row.name, speedup));
            }
        }
        json.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
        eprintln!(
            "{:<16} median {:>12} ns   ({:.1} {}/s)",
            row.name, row.median_ns, per_s, row.unit
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, json).expect("write output");
    eprintln!("wrote {out_path}");
    for (name, speedup) in &regressions {
        eprintln!(
            "WARNING: {name} regressed to {speedup:.2}x of the baseline \
             (>10% slower) — rerun on a quiet machine, then profile \
             (`--trace` flame summary) before accepting the new numbers"
        );
    }
}
