//! Experiment binary: prints the e1_toolflow table (see EXPERIMENTS.md).
fn main() {
    print!("{}", argo_bench::e1_toolflow());
}
