//! E1 (paper Fig. 1): the complete tool flow on all three use cases —
//! task counts, sequential/parallel WCET bounds, guaranteed speedup and
//! a simulator soundness check per use case.
use std::process::ExitCode;

fn main() -> ExitCode {
    argo_bench::run_binary("e1_toolflow", argo_bench::e1_toolflow)
}
