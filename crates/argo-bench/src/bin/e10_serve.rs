//! **E10 — daemon traffic replay**: N concurrent clients replay a
//! mixed hot/cold request trace against an `argo-serve` daemon and
//! report request-latency percentiles and throughput.
//!
//! The trace has two passes over D distinct compile requests:
//!
//! * **cold** — every client sends all D requests concurrently. The
//!   single-flight layer and the shared store guarantee the pipeline
//!   runs exactly once per distinct fingerprint, however the N·D
//!   arrivals interleave.
//! * **hot** — every client replays the same D requests again. Every
//!   one is answered without a pipeline stage (point-archive hit or
//!   coalesced onto one), which the driver asserts as a 100% combined
//!   store-hit rate on repeats.
//!
//! By default the daemon is booted in-process over a throwaway store;
//! `--connect ADDR` replays against an external daemon instead (the
//! assertions then use stats-counter *deltas*, so a pre-warmed daemon
//! is fine — the cold pass simply finds fewer fresh fingerprints).
//!
//! ```text
//! e10_serve [--clients N] [--connect ADDR] [--merge BENCH_hotpaths.json]
//! ```
//!
//! `--merge` appends/replaces `e10_serve_cold` / `e10_serve_hot` rows
//! (p50 as `median_ns`, plus `p99_ns`) in a `bench_hotpaths` output
//! file, so replay latency lands in the same perf record as the micro
//! benches. Exits non-zero if any invariant fails.

use argo_serve::{Client, Listener, ServeConfig, Server, Value};
use std::fmt::Write as _;
use std::time::Instant;

/// The D distinct requests of the trace: one use case, four
/// configurations (two core counts × two schedulers).
fn distinct_requests() -> Vec<String> {
    let mut requests = Vec::new();
    for cores in [2usize, 4] {
        for scheduler in ["list", "anneal"] {
            requests.push(format!(
                "{{\"id\": 1, \"kind\": \"compile\", \"app\": \"egpws\", \
                 \"cores\": {cores}, \"scheduler\": \"{scheduler}\"}}"
            ));
        }
    }
    requests
}

/// Pipeline/store counters scraped from a `stats` response.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    backend_runs: u64,
    point_store_hits: u64,
    point_store_misses: u64,
}

fn stats_counters(addr: &str) -> Counters {
    let mut client = Client::connect_tcp(addr).expect("connect for stats");
    let reply = client
        .request(r#"{"id": 0, "kind": "stats"}"#)
        .expect("stats roundtrip");
    let frame = reply.frame().expect("stats frame parses");
    let result = frame.get("result").expect("stats result");
    let field = |obj: &Value, key: &str| obj.get(key).and_then(Value::as_u64).unwrap_or(0);
    let stages = result.get("stages").expect("stages");
    let cache = result.get("cache").expect("cache");
    Counters {
        backend_runs: field(stages, "backend_runs"),
        point_store_hits: field(cache, "point_store_hits"),
        point_store_misses: field(cache, "point_store_misses"),
    }
}

/// One replay pass: every client sends every request once,
/// concurrently. Returns all per-request latencies in nanoseconds.
fn replay_pass(addr: &str, clients: usize, requests: &[String]) -> Vec<u64> {
    let all: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::connect_tcp(addr).expect("client connects");
                    requests
                        .iter()
                        .map(|request| {
                            let t0 = Instant::now();
                            let reply = client.request(request).expect("request roundtrip");
                            assert!(reply.is_ok(), "request failed: {}", reply.terminal);
                            t0.elapsed().as_nanos() as u64
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    all.into_iter().flatten().collect()
}

struct PassReport {
    requests: usize,
    wall_ns: u64,
    p50_ns: u64,
    p99_ns: u64,
}

impl PassReport {
    fn of(latencies: &mut [u64], wall_ns: u64) -> PassReport {
        latencies.sort_unstable();
        let n = latencies.len();
        PassReport {
            requests: n,
            wall_ns,
            p50_ns: latencies[n / 2],
            p99_ns: latencies[(n * 99 / 100).min(n - 1)],
        }
    }

    fn throughput(&self) -> f64 {
        self.requests as f64 / (self.wall_ns as f64 * 1e-9)
    }

    fn print(&self, label: &str, detail: &str) {
        println!(
            "{label}: {} requests in {:.1} ms   p50 {:.1} us   p99 {:.1} us   \
             throughput {:.1} req/s   {detail}",
            self.requests,
            self.wall_ns as f64 / 1e6,
            self.p50_ns as f64 / 1e3,
            self.p99_ns as f64 / 1e3,
            self.throughput(),
        );
    }
}

/// Inserts (or replaces) the e10 rows in a `bench_hotpaths` JSON file,
/// preserving every other row byte-for-byte.
fn merge_rows(path: &str, cold: &PassReport, hot: &PassReport) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let mut lines: Vec<String> = text
        .lines()
        .filter(|line| !line.trim_start().starts_with("\"e10_serve_"))
        .map(str::to_string)
        .collect();
    let close = lines
        .iter()
        .position(|line| line == "  }")
        .unwrap_or_else(|| panic!("{path} is not a bench_hotpaths output"));
    // The (current) last row must now carry a trailing comma.
    let last = &mut lines[close - 1];
    if last.ends_with('}') {
        last.push(',');
    }
    let row = |name: &str, pass: &PassReport, tail: &str| {
        format!(
            "    \"{name}\": {{\"median_ns\": {}, \"items\": {}, \"unit\": \"requests\", \
             \"throughput_per_s\": {:.1}, \"p99_ns\": {}}}{tail}",
            pass.p50_ns,
            pass.requests,
            pass.throughput(),
            pass.p99_ns
        )
    };
    let cold_row = row("e10_serve_cold", cold, ",");
    let hot_row = row("e10_serve_hot", hot, "");
    lines.splice(close..close, [cold_row, hot_row]);
    let mut out = lines.join("\n");
    out.push('\n');
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("merged e10 rows into {path}");
}

fn main() {
    let mut clients = 4usize;
    let mut connect: Option<String> = None;
    let mut merge: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--clients" => clients = args.next().expect("--clients N").parse().expect("number"),
            "--connect" => connect = Some(args.next().expect("--connect ADDR")),
            "--merge" => merge = Some(args.next().expect("--merge PATH")),
            other => {
                eprintln!("usage: e10_serve [--clients N] [--connect ADDR] [--merge PATH]");
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    // Boot in-process over a throwaway store unless pointed elsewhere.
    let mut temp_store = None;
    let (addr, server) = match connect {
        Some(addr) => (addr, None),
        None => {
            let dir = std::env::temp_dir().join(format!("argo-e10-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let store = argo_store::Store::open(&dir).expect("store opens");
            let explorer =
                argo_dse::Explorer::with_threads(2).with_store(std::sync::Arc::new(store));
            let server = Server::start(
                Listener::tcp("127.0.0.1:0").expect("bind"),
                explorer,
                ServeConfig::default(),
            )
            .expect("server starts");
            temp_store = Some(dir);
            (server.addr().to_string(), Some(server))
        }
    };

    let requests = distinct_requests();
    let distinct = requests.len();
    println!(
        "e10_serve: {clients} clients × {distinct} distinct requests, cold+hot replay \
         against {addr}"
    );

    let before = stats_counters(&addr);

    let t0 = Instant::now();
    let mut cold_lat = replay_pass(&addr, clients, &requests);
    let cold_wall = t0.elapsed().as_nanos() as u64;
    let after_cold = stats_counters(&addr);

    let t0 = Instant::now();
    let mut hot_lat = replay_pass(&addr, clients, &requests);
    let hot_wall = t0.elapsed().as_nanos() as u64;
    let after_hot = stats_counters(&addr);

    // Invariant 1: one pipeline execution per distinct fresh
    // fingerprint, no matter how the N·D cold arrivals interleaved.
    let cold_runs = after_cold.backend_runs - before.backend_runs;
    let cold_misses = after_cold.point_store_misses - before.point_store_misses;
    assert_eq!(
        cold_runs, cold_misses,
        "every archive miss must trigger exactly one pipeline execution"
    );
    assert!(
        cold_runs <= distinct as u64,
        "more pipeline executions ({cold_runs}) than distinct fingerprints ({distinct})"
    );
    if server.is_some() {
        assert_eq!(
            cold_runs, distinct as u64,
            "a fresh store must execute each distinct fingerprint exactly once"
        );
    }

    // Invariant 2: the hot pass never reaches the pipeline — zero new
    // archive misses, zero new stage runs: 100% combined store hits.
    let hot_runs = after_hot.backend_runs - after_cold.backend_runs;
    let hot_misses = after_hot.point_store_misses - after_cold.point_store_misses;
    assert_eq!(hot_runs, 0, "hot pass must not run the pipeline");
    assert_eq!(hot_misses, 0, "hot pass must not miss the archive");
    let hot_hits = after_hot.point_store_hits - after_cold.point_store_hits;

    let cold = PassReport::of(&mut cold_lat, cold_wall);
    let hot = PassReport::of(&mut hot_lat, hot_wall);
    let mut cold_detail = String::new();
    let _ = write!(
        cold_detail,
        "pipeline executions: {cold_runs} (one per distinct fingerprint)"
    );
    cold.print("cold", &cold_detail);
    hot.print(
        "hot ",
        &format!("combined store hits on repeats: 100% ({hot_hits} archive hits, 0 misses)"),
    );

    if let Some(path) = merge {
        merge_rows(&path, &cold, &hot);
    }

    if let Some(server) = server {
        let mut client = Client::connect_tcp(&addr).expect("connect for shutdown");
        client
            .request(r#"{"id": 0, "kind": "shutdown"}"#)
            .expect("shutdown");
        server.join();
    }
    if let Some(dir) = temp_store {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
