//! Experiment binary: prints the e7_granularity table (see EXPERIMENTS.md).
fn main() {
    print!("{}", argo_bench::e7_granularity());
}
