//! E7: task-granularity sweep (§ III-C trade-off) on WEAA, swept as an
//! `argo-dse` design space along the granularity axis.
use std::process::ExitCode;

fn main() -> ExitCode {
    argo_bench::run_binary("e7_granularity", argo_bench::e7_granularity)
}
