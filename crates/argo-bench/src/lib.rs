//! # argo-bench — experiment drivers for the evaluation suite
//!
//! One driver per experiment of EXPERIMENTS.md (E1–E8). Each driver
//! returns the table text it prints, so the binaries (`src/bin/eN_*.rs`)
//! and the Criterion benches share the exact same code paths.
//!
//! The source paper (DATE 2017 project overview) contains a single figure
//! — the tool-flow diagram — and no quantitative tables; the experiments
//! quantify each claim of §§ I–III instead (see DESIGN.md § 5).

use argo_adl::{Arbitration, CacheConfig, Platform};
use argo_core::{CollectingObserver, SchedulerKind, Stage, ToolchainConfig, Toolflow};
use argo_htg::Granularity;
use argo_sched::anneal::SimulatedAnnealing;
use argo_sched::bnb::BranchAndBound;
use argo_sched::list::ListScheduler;
use argo_sched::random::{random_task_graph, RandomGraphParams};
use argo_sched::{SchedCtx, Scheduler};
use argo_sim::{simulate, SimConfig, SimMode};
use argo_wcet::system::MhpMode;
use std::fmt::Write as _;

/// E1 (Fig. 1): the complete tool flow on all three use cases.
///
/// Driven through observed [`Toolflow`] sessions: the trailing line
/// counts the paired stage events the driver emitted, pinning the
/// observability contract into the experiment table (deterministic —
/// no wall-clock values reach stdout).
pub fn e1_toolflow() -> String {
    let mut out = String::from(
        "E1 (Fig.1) end-to-end tool flow — 4-core WRR bus\n\
         use-case     tasks  signals  seq-WCET   par-WCET  speedup  observed  sound\n",
    );
    let platform = Platform::xentium_manycore(4);
    let obs = CollectingObserver::new();
    for uc in argo_apps::all_use_cases(42) {
        let r = Toolflow::new(uc.program.clone(), uc.entry)
            .platform(&platform)
            .observer(&obs)
            .run()
            .expect("compile");
        let sim = simulate(
            &r.parallel,
            &platform,
            uc.args.clone(),
            &SimConfig::default(),
        )
        .expect("simulate");
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>8} {:>9} {:>10} {:>7.2}x {:>9}  {}",
            uc.name,
            r.parallel.graph.len(),
            r.parallel.sync_count(),
            r.sequential_bound,
            r.system.bound,
            r.wcet_speedup(),
            sim.cycles,
            if sim.cycles <= r.system.bound {
                "yes"
            } else {
                "NO!"
            },
        );
    }
    assert!(obs.well_nested(), "stage events must be well-nested");
    let _ = writeln!(
        out,
        "(toolflow stages observed: {} frontend / {} backend pairs, {} feedback rounds)",
        obs.finished_count(Stage::Frontend),
        obs.finished_count(Stage::Backend),
        obs.feedback_rounds().len(),
    );
    out
}

/// E2: guaranteed WCET speedup vs core count, per use case.
pub fn e2_wcet_speedup(core_counts: &[usize]) -> String {
    let mut out = String::from("E2 guaranteed WCET speedup vs cores (WRR bus)\nuse-case    ");
    for &c in core_counts {
        let _ = write!(out, "{c:>8}c");
    }
    out.push('\n');
    for uc in argo_apps::all_use_cases(42) {
        let _ = write!(out, "{:<12}", uc.name);
        for &cores in core_counts {
            let platform = Platform::xentium_manycore(cores);
            let r = Toolflow::new(uc.program.clone(), uc.entry)
                .platform(&platform)
                .run()
                .expect("compile");
            let _ = write!(out, "{:>8.2}x", r.wcet_speedup());
        }
        out.push('\n');
    }
    out
}

/// E3: bound tightness per MHP mode vs simulator observation.
///
/// Two workloads: POLKA (fully parallel chunks — all modes coincide, the
/// contention is real) and a pipelined two-chain program where only the
/// schedule proves that at most two tasks overlap — there the MHP
/// precision ladder separates.
pub fn e3_tightness() -> String {
    let mut out = String::from(
        "E3 system-level WCET bound per MHP precision (4-core WRR)\n\
         workload   mhp-mode     bound      observed  bound/observed\n",
    );
    let platform = Platform::xentium_manycore(4);
    let polka = &argo_apps::all_use_cases(42)[2];
    let pipe_src = r#"
        void main(real a[256], real b[256], real c[256], real d[256], real e[256]) {
            int i;
            for (i = 1; i < 256; i = i + 1) { b[i] = b[i-1] * 0.5 + a[i]; }
            for (i = 1; i < 256; i = i + 1) { c[i] = c[i-1] * 0.25 + b[i]; }
            for (i = 1; i < 256; i = i + 1) { d[i] = d[i-1] * 0.5 + a[i] * 2.0; }
            for (i = 1; i < 256; i = i + 1) { e[i] = e[i-1] * 0.25 + d[i]; }
        }
    "#;
    let pipe_program = argo_ir::parse::parse_program(pipe_src).expect("pipe source");
    let pipe_args: Vec<argo_ir::interp::ArgVal> = (0..5)
        .map(|_| {
            argo_ir::interp::ArgVal::Array(argo_ir::interp::ArrayData::from_reals(&[1.0; 256]))
        })
        .collect();
    let workloads: Vec<(&str, &argo_ir::Program, &str, Vec<argo_ir::interp::ArgVal>)> = vec![
        ("polka", &polka.program, polka.entry, polka.args.clone()),
        ("pipelines", &pipe_program, "main", pipe_args),
    ];
    for (wname, program, entry, args) in workloads {
        for mhp in [MhpMode::Naive, MhpMode::Static, MhpMode::Windows] {
            let cfg = ToolchainConfig {
                mhp,
                ..Default::default()
            };
            let r = Toolflow::new(program.clone(), entry)
                .platform(&platform)
                .config(cfg)
                .run()
                .expect("compile");
            let sim = simulate(&r.parallel, &platform, args.clone(), &SimConfig::default())
                .expect("simulate");
            let _ = writeln!(
                out,
                "{wname:<10} {:<12} {:>9} {:>12} {:>13.2}x",
                mhp.to_string(),
                r.system.bound,
                sim.cycles,
                r.system.bound as f64 / sim.cycles.max(1) as f64
            );
        }
    }
    out.push_str("(window MHP requires time-triggered dispatch; static is the sound default)\n");
    out
}

/// E4: scheduler ablation on random layered DAGs — makespan and runtime.
///
/// Runs on the `argo-dse` work-stealing executor: each DAG size is an
/// independent job, evaluated in parallel with deterministic row order.
pub fn e4_sched_ablation(sizes: &[usize]) -> String {
    let mut out = String::from(
        "E4 scheduler ablation (random layered DAGs, 4 cores, mean of 5 seeds)\n\
         tasks   list-ms   bnb-ms    sa-ms   bnb/list  sa/list   bnb-nodes\n",
    );
    let platform = Platform::xentium_manycore(4);
    let ctx = SchedCtx::new(&platform);
    let rows = argo_dse::executor::parallel_map(
        sizes.to_vec(),
        argo_dse::executor::default_threads(),
        &|_idx, n| {
            let params = RandomGraphParams {
                tasks: n,
                ..Default::default()
            };
            let (mut l, mut b, mut s, mut nodes) = (0f64, 0f64, 0f64, 0u64);
            const SEEDS: u64 = 5;
            for seed in 0..SEEDS {
                let g = random_task_graph(seed, &params);
                l += ListScheduler::new().schedule(&g, &ctx).makespan() as f64;
                let (bs, nn) = BranchAndBound::new().schedule_counted(&g, &ctx);
                b += bs.makespan() as f64;
                nodes += nn;
                s += SimulatedAnnealing::with_seed(seed)
                    .schedule(&g, &ctx)
                    .makespan() as f64;
            }
            let (l, b, s) = (l / SEEDS as f64, b / SEEDS as f64, s / SEEDS as f64);
            format!(
                "{n:>5} {l:>9.0} {b:>8.0} {s:>8.0} {:>9.3} {:>8.3} {:>11}\n",
                b / l,
                s / l,
                nodes / SEEDS
            )
        },
    );
    for row in rows {
        out.push_str(&row);
    }
    out
}

/// E5: WCET-directed scratchpad allocation — bound vs SPM capacity.
///
/// Runs as an `argo-dse` design-space sweep along the SPM axis (EGPWS,
/// one core); capacities sharing the frontend artifact hit the cache.
pub fn e5_spm(capacities: &[u64]) -> String {
    let mut out = String::from(
        "E5 scratchpad allocation (EGPWS, 1 core: all arrays single-core)\n\
         spm-bytes   seq-WCET-bound   vs-no-spm\n",
    );
    let space = argo_dse::DesignSpace::new()
        .app("egpws")
        .cores(vec![1])
        .spm_capacities(capacities.iter().map(|&c| Some(c)).collect());
    let report = argo_dse::Explorer::new().explore(&space);
    // Baseline for the ratio column: the no-SPM row wherever it appears
    // in the list, else the first row (the binary accepts arbitrary
    // capacity lists, so 0 is not guaranteed to lead).
    let bound_of = |row: &argo_dse::ReportRow| row.outcome.as_ref().expect("compile").par_bound;
    let base = report
        .rows
        .iter()
        .find(|r| r.point.spm_bytes == Some(0))
        .or_else(|| report.rows.first())
        .map(&bound_of)
        .unwrap_or(0);
    for row in &report.rows {
        let cap = row.point.spm_bytes.expect("explicit capacity axis");
        let bound = bound_of(row);
        let _ = writeln!(
            out,
            "{cap:>9} {:>16} {:>10.2}x",
            bound,
            base as f64 / bound.max(1) as f64
        );
    }
    out
}

/// E6: architecture-predictability ablation (§ III-B guidelines).
pub fn e6_arch_predictability() -> String {
    let mut out = String::from(
        "E6 architecture predictability (POLKA, 4 cores): bound and tightness\n\
         variant            bound      observed  bound/obs\n",
    );
    let uc = &argo_apps::all_use_cases(42)[2];
    let variants: Vec<(String, Platform)> = vec![
        ("wrr-spm".into(), Platform::xentium_manycore(4)),
        (
            "tdma-spm".into(),
            Platform::generic_bus(
                4,
                Arbitration::Tdma {
                    slot_cycles: 12,
                    total_slots: 4,
                },
            ),
        ),
        (
            "fixedprio-spm".into(),
            Platform::generic_bus(
                4,
                Arbitration::FixedPriority {
                    priorities: vec![0, 1, 2, 3],
                },
            ),
        ),
        (
            "wrr-cache".into(),
            Platform::xentium_manycore(4).with_caches(CacheConfig::small()),
        ),
    ];
    for (name, platform) in variants {
        let r = Toolflow::new(uc.program.clone(), uc.entry)
            .platform(&platform)
            .run()
            .expect("compile");
        let sim = simulate(
            &r.parallel,
            &platform,
            uc.args.clone(),
            &SimConfig::default(),
        )
        .expect("simulate");
        let _ = writeln!(
            out,
            "{name:<18} {:>9} {:>12} {:>9.2}x",
            r.system.bound,
            sim.cycles,
            r.system.bound as f64 / sim.cycles.max(1) as f64
        );
    }
    out
}

/// E7: task-granularity sweep (§ III-C trade-off).
///
/// Runs as an `argo-dse` design-space sweep along the granularity axis
/// (WEAA, 4 cores), with the three granularities explored in parallel.
pub fn e7_granularity() -> String {
    let mut out = String::from(
        "E7 granularity sweep (WEAA, 4 cores)\n\
         granularity  tasks  signals  par-WCET   speedup\n",
    );
    let space = argo_dse::DesignSpace::new()
        .app("weaa")
        .cores(vec![4])
        .granularities(vec![
            Granularity::Loop,
            Granularity::Block,
            Granularity::Stmt,
        ]);
    let report = argo_dse::Explorer::new().explore(&space);
    for row in &report.rows {
        let m = row.outcome.as_ref().expect("compile");
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>8} {:>9} {:>8.2}x",
            argo_dse::space::granularity_label(row.point.granularity),
            m.tasks,
            m.signals,
            m.par_bound,
            m.speedup
        );
    }
    out
}

/// E8: ARGO schedule-aware bound vs manual fork-join (parMERASA, ref \[4\]).
///
/// ARGO uses the window-MHP bound — legitimate because the generated
/// schedule is enforced time-triggered; the manual version has no
/// schedule knowledge, so every access is all-contend and every level
/// pays a barrier. This is precisely the asymmetry ref \[4\] observed.
pub fn e8_parmerasa() -> String {
    let mut out = String::from(
        "E8 manual fork-join vs ARGO schedule-aware WCET (4-core WRR)\n\
         use-case     manual-bound  argo-bound  pessimism\n",
    );
    let platform = Platform::xentium_manycore(4);
    let cfg = ToolchainConfig {
        mhp: MhpMode::Windows,
        ..Default::default()
    };
    for uc in argo_apps::all_use_cases(42) {
        let r = Toolflow::new(uc.program.clone(), uc.entry)
            .platform(&platform)
            .config(cfg.clone())
            .run()
            .expect("compile");
        let manual = argo_wcet::system::manual_fork_join_bound(
            &r.parallel.graph,
            &platform,
            &r.iso_costs,
            &r.shared_accesses,
        );
        let _ = writeln!(
            out,
            "{:<12} {:>13} {:>11} {:>9.2}x",
            uc.name,
            manual,
            r.system.bound,
            manual as f64 / r.system.bound.max(1) as f64
        );
    }
    // Pipelined synthetic program: two independent 2-stage chains of
    // *sequential* (non-chunkable) filters. The schedule proves that at
    // most two tasks overlap (k=2); the manual analysis must assume all
    // cores contend (k=4) — where schedule knowledge really pays.
    let src = r#"
        void main(real a[256], real b[256], real c[256], real d[256], real e[256]) {
            int i;
            for (i = 1; i < 256; i = i + 1) { b[i] = b[i-1] * 0.5 + a[i]; }
            for (i = 1; i < 256; i = i + 1) { c[i] = c[i-1] * 0.25 + b[i]; }
            for (i = 1; i < 256; i = i + 1) { d[i] = d[i-1] * 0.5 + a[i] * 2.0; }
            for (i = 1; i < 256; i = i + 1) { e[i] = e[i-1] * 0.25 + d[i]; }
        }
    "#;
    let program = argo_ir::parse::parse_program(src).expect("pipeline source");
    let r = Toolflow::new(program, "main")
        .platform(&platform)
        .config(cfg)
        .run()
        .expect("compile");
    let manual = argo_wcet::system::manual_fork_join_bound(
        &r.parallel.graph,
        &platform,
        &r.iso_costs,
        &r.shared_accesses,
    );
    let _ = writeln!(
        out,
        "{:<12} {:>13} {:>11} {:>9.2}x",
        "pipelines",
        manual,
        r.system.bound,
        manual as f64 / r.system.bound.max(1) as f64
    );
    out
}

/// E2 auxiliary: average-vs-worst-case gap per use case (motivates the
/// WCET "tightness" discussion of § I).
pub fn e2b_wcet_gap() -> String {
    let mut out = String::from(
        "E2b bound vs average observed (4-core WRR)\n\
         use-case     bound     avg-observed  gap\n",
    );
    let platform = Platform::xentium_manycore(4);
    for uc in argo_apps::all_use_cases(42) {
        let r = Toolflow::new(uc.program.clone(), uc.entry)
            .platform(&platform)
            .run()
            .expect("compile");
        let avg = simulate(
            &r.parallel,
            &platform,
            uc.args.clone(),
            &SimConfig {
                mode: SimMode::Random { seed: 9 },
            },
        )
        .expect("simulate");
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>13} {:>6.2}x",
            uc.name,
            r.system.bound,
            avg.cycles,
            r.system.bound as f64 / avg.cycles.max(1) as f64
        );
    }
    out
}

/// E9: search-vs-exhaustive Pareto-front quality on a 512-point lattice
/// (the acceptance-criterion shape).
///
/// Races every `argo-search` strategy (genetic, annealing, successive
/// halving) at a 25% evaluation budget against the exhaustive sweep on
/// one EGPWS design space, reporting how much of the exhaustive front's
/// distinct objective vectors each strategy recovers. All strategies
/// run on one shared [`argo_dse::Explorer`], so artifact-cache reuse
/// mirrors how a designer would actually iterate. The table is
/// deterministic: evaluation counts and recovery are seed-pinned, and
/// no wall-clock values reach stdout.
pub fn e9_search_quality() -> String {
    use argo_dse::{DesignSpace, Explorer, PlatformKind};
    use std::collections::BTreeSet;

    let space = DesignSpace::new()
        .app("egpws")
        .platforms(vec![PlatformKind::Bus, PlatformKind::Noc])
        .cores(vec![1, 2, 4, 6])
        .schedulers(vec![SchedulerKind::List, SchedulerKind::BranchAndBound])
        .granularities(vec![Granularity::Loop, Granularity::Block])
        .chunking(vec![true, false])
        .spm_capacities(vec![
            None,
            Some(512),
            Some(1024),
            Some(2048),
            Some(4096),
            Some(8192),
            Some(12288),
            Some(16384),
        ])
        .seed(7);
    let lattice = space.len();
    let budget = lattice / 4;

    let explorer = Explorer::new();
    let exhaustive = explorer.explore(&space);
    assert_eq!(exhaustive.failures(), 0, "exhaustive sweep must be clean");
    let front: BTreeSet<[u64; 3]> = exhaustive
        .pareto
        .iter()
        .filter_map(|&i| exhaustive.rows[i].objectives())
        .collect();
    assert!(!front.is_empty());

    let mut out = format!(
        "E9 search vs exhaustive front quality (EGPWS, {lattice}-point lattice, \
         budget {budget} = 25%)\n\
         strategy     evals  coverage  front-found  recovery\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>8}% {:>8}/{:<3} {:>8}%",
        "exhaustive",
        lattice,
        100,
        front.len(),
        front.len(),
        100
    );
    for strategy in argo_search::all_strategies() {
        let report = explorer.search(
            &space,
            strategy.as_ref(),
            argo_search::Budget::evaluations(budget),
        );
        let info = report.search.as_ref().expect("search metadata");
        assert!(info.evaluated <= budget, "{} overspent", strategy.name());
        let found: BTreeSet<[u64; 3]> = report
            .pareto
            .iter()
            .filter_map(|&i| report.rows[i].objectives())
            .collect();
        let recovered = front.iter().filter(|v| found.contains(*v)).count();
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>8.0}% {:>8}/{:<3} {:>8.0}%",
            strategy.name(),
            info.evaluated,
            info.coverage() * 100.0,
            recovered,
            front.len(),
            recovered as f64 / front.len() as f64 * 100.0
        );
    }
    out
}

/// Entry point shared by the `eN_*` experiment binaries: runs the driver,
/// prints its table, and converts panics into a nonzero exit with the
/// failure on stderr (experiment drivers assert their own invariants and
/// panic on violation).
pub fn run_binary(
    name: &str,
    table: impl FnOnce() -> String + std::panic::UnwindSafe,
) -> std::process::ExitCode {
    match std::panic::catch_unwind(table) {
        Ok(t) => {
            print!("{t}");
            std::process::ExitCode::SUCCESS
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            eprintln!("{name}: FAILED: {msg}");
            std::process::ExitCode::FAILURE
        }
    }
}

/// Parses a comma-separated numeric list CLI argument, falling back to
/// `default` when absent; exits with usage on malformed input.
pub fn parse_list_arg<T>(usage: &str, default: &[T]) -> Vec<T>
where
    T: std::str::FromStr + Copy,
{
    match std::env::args().nth(1) {
        None => default.to_vec(),
        Some(arg) => match arg.split(',').map(str::trim).map(str::parse).collect() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("usage: {usage}");
                std::process::exit(2);
            }
        },
    }
}

/// Scheduler-kind sweep used by E4's tool-chain-level variant.
pub fn compile_with_scheduler(kind: SchedulerKind) -> f64 {
    let platform = Platform::xentium_manycore(4);
    let uc = &argo_apps::all_use_cases(42)[2];
    let cfg = ToolchainConfig {
        scheduler: kind,
        ..Default::default()
    };
    let r = Toolflow::new(uc.program.clone(), uc.entry)
        .platform(&platform)
        .config(cfg)
        .run()
        .expect("compile");
    r.wcet_speedup()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reports_sound_rows_for_all_use_cases() {
        let t = e1_toolflow();
        assert_eq!(t.matches("yes").count(), 3);
        assert!(!t.contains("NO!"));
    }

    #[test]
    fn e3_naive_is_loosest() {
        let t = e3_tightness();
        // The `pipelines` rows separate the MHP precision ladder.
        let bounds: Vec<u64> = t
            .lines()
            .filter(|l| l.starts_with("pipelines"))
            .map(|l| l.split_whitespace().nth(2).unwrap().parse().unwrap())
            .collect();
        assert_eq!(bounds.len(), 3);
        assert!(
            bounds[0] > bounds[1],
            "naive must exceed static on pipelines"
        );
        assert!(bounds[1] >= bounds[2]);
    }

    #[test]
    fn e4_exact_never_worse() {
        let t = e4_sched_ablation(&[8]);
        let row = t.lines().nth(2).unwrap();
        let ratio: f64 = row.split_whitespace().nth(4).unwrap().parse().unwrap();
        assert!(ratio <= 1.0 + 1e-9);
    }

    #[test]
    fn e5_dse_rows_match_direct_compile() {
        let caps = [0u64, 16384];
        let table = e5_spm(&caps);
        for (line, &cap) in table.lines().skip(2).zip(&caps) {
            let mut platform = Platform::xentium_manycore(1);
            platform.cores[0].spm_bytes = cap;
            let uc = argo_apps::egpws::use_case(42);
            let direct = argo_core::compile(
                uc.program.clone(),
                uc.entry,
                &platform,
                &ToolchainConfig::default(),
            )
            .expect("compile");
            let bound: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
            assert_eq!(bound, direct.system.bound, "capacity {cap}: {line}");
        }
    }

    #[test]
    fn e7_dse_rows_match_direct_compile() {
        let table = e7_granularity();
        let platform = Platform::xentium_manycore(4);
        let uc = argo_apps::weaa::use_case(42);
        for (line, g) in
            table
                .lines()
                .skip(2)
                .zip([Granularity::Loop, Granularity::Block, Granularity::Stmt])
        {
            let cfg = ToolchainConfig {
                granularity: g,
                ..Default::default()
            };
            let direct =
                argo_core::compile(uc.program.clone(), uc.entry, &platform, &cfg).expect("compile");
            let cols: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(
                cols[1].parse::<usize>().unwrap(),
                direct.parallel.graph.len(),
                "{line}"
            );
            assert_eq!(
                cols[3].parse::<u64>().unwrap(),
                direct.system.bound,
                "{line}"
            );
        }
    }

    #[test]
    fn e9_races_every_strategy_against_the_exhaustive_sweep() {
        // Shape only: the driver itself asserts budget compliance and a
        // clean exhaustive sweep, and the ≥ 90%-recovery-at-≤ 25%-budget
        // quality bar is pinned (with structured assertions, on the same
        // 512-point space) by tests/search.rs — not re-asserted here by
        // parsing our own table.
        let t = e9_search_quality();
        assert_eq!(t.lines().count(), 6, "header + exhaustive + 3 strategies");
        assert!(t.lines().nth(2).unwrap().starts_with("exhaustive"));
        for name in ["ga", "anneal", "halving"] {
            assert!(
                t.lines().any(|l| l.starts_with(name)),
                "{name} missing from:\n{t}"
            );
        }
    }

    #[test]
    fn e8_manual_is_more_pessimistic() {
        let t = e8_parmerasa();
        let mut ratios = Vec::new();
        for line in t.lines().skip(2) {
            let p: f64 = line
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('x')
                .parse()
                .unwrap();
            // Never meaningfully better than ARGO (display rounding aside)…
            assert!(p >= 0.99, "manual beat ARGO: {line}");
            ratios.push(p);
        }
        // …and clearly worse where parallelism exists.
        assert!(
            ratios.iter().any(|&p| p > 1.2),
            "no pessimism shown: {ratios:?}"
        );
    }
}
