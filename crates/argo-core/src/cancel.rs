//! Cooperative cancellation and per-request deadlines.
//!
//! The toolflow's stages are pure CPU work — there is no I/O to
//! interrupt — so cancellation is *cooperative*: a [`CancelToken`] is
//! shared between a controller (e.g. the `argo-serve` request loop)
//! and the running session, and the session driver polls it at every
//! stage boundary via [`StageObserver::checkpoint`]. A tripped token
//! aborts the pipeline with a structured
//! [`ErrorCode::DeadlineExceeded`] diagnostic instead of letting an
//! already-doomed request burn a worker to completion.
//!
//! Stage boundaries are the paper-faithful granularity: the §II-E
//! feedback loop inside the backend runs to convergence uninterrupted,
//! so a cancelled session still leaves only complete, consistent
//! artifacts in its caches.
//!
//! [`StageObserver::checkpoint`]: crate::observer::StageObserver::checkpoint
//! [`ErrorCode::DeadlineExceeded`]: crate::ErrorCode::DeadlineExceeded

use crate::diag::{Diagnostic, ErrorCode, Stage};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cloneable, thread-safe cancellation handle, optionally carrying a
/// deadline. Clones share state: cancelling any clone cancels all.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never expires and starts uncancelled.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally trips once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Trips the token (and every clone of it) immediately.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    /// Does not consider the deadline; see [`CancelToken::is_tripped`].
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// `true` once the deadline (if any) has passed.
    pub fn is_expired(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// `true` when the token should stop work: explicitly cancelled or
    /// past its deadline.
    pub fn is_tripped(&self) -> bool {
        self.is_cancelled() || self.is_expired()
    }

    /// The deadline this token carries, when it has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Checkpoint: `Ok(())` while work may continue, otherwise a
    /// [`ErrorCode::DeadlineExceeded`] diagnostic attributed to `stage`
    /// (the stage that was about to run when the token tripped).
    ///
    /// # Errors
    ///
    /// Returns the diagnostic described above once the token is
    /// cancelled or expired.
    pub fn check(&self, stage: Stage) -> Result<(), Diagnostic> {
        if self.is_tripped() {
            Err(Diagnostic::new(
                stage,
                ErrorCode::DeadlineExceeded,
                if self.is_cancelled() {
                    "request cancelled before this stage could run"
                } else {
                    "request deadline elapsed before this stage could run"
                },
            ))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_passes_checkpoints() {
        let t = CancelToken::new();
        assert!(!t.is_tripped());
        assert!(t.check(Stage::Frontend).is_ok());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn cancel_trips_every_clone() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        let d = t.check(Stage::Backend).unwrap_err();
        assert_eq!(d.code, ErrorCode::DeadlineExceeded);
        assert_eq!(d.stage, Stage::Backend);
        assert!(d.message.contains("cancelled"), "{}", d.message);
    }

    #[test]
    fn past_deadline_trips_with_deadline_message() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_expired() && t.is_tripped() && !t.is_cancelled());
        let d = t.check(Stage::SeedCosts).unwrap_err();
        assert_eq!(d.code, ErrorCode::DeadlineExceeded);
        assert!(d.message.contains("deadline"), "{}", d.message);
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_tripped());
        assert!(t.check(Stage::Verify).is_ok());
        assert!(t.deadline().is_some());
    }
}
