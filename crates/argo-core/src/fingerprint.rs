//! Canonical, API-owned content fingerprints for tool-flow inputs and
//! artifacts.
//!
//! A [`Fingerprint`] is a stable 64-bit content hash: equal inputs hash
//! equal in every process, on every run, on every platform — which is
//! what makes fingerprints usable as cross-process cache keys (the
//! `argo-dse` artifact cache, the ROADMAP's persistent/third-tier
//! caches). The encoding is owned by this module, *not* derived from
//! `Debug` formatting: every field a stage observes is fed explicitly,
//! length-prefixed, so adding cosmetic fields (names, display strings)
//! cannot silently change keys, and `["ab","c"]` never collides with
//! `["a","bc"]`.
//!
//! Two kinds of things carry fingerprints:
//!
//! * **inputs** — [`Platform`] and [`ToolchainConfig`] implement
//!   [`Fingerprintable`]; a platform's cosmetic `name` is deliberately
//!   excluded (two platforms differing only in name behave identically);
//! * **artifacts** — [`FrontendArtifact`](crate::FrontendArtifact),
//!   [`CostTable`](crate::CostTable) and
//!   [`BackendResult`](crate::BackendResult) implement the
//!   [`Artifact`](crate::Artifact) trait whose `fingerprint()` hashes
//!   the artifact *content*.

use argo_adl::{Arbitration, CacheConfig, Core, CoreKind, CoreTiming, Interconnect, Platform};
use argo_sched::TaskGraph;
use argo_wcet::value::ValueCtx;
use std::fmt;

use crate::{SchedulerKind, ToolchainConfig};

/// A stable 64-bit content hash (FNV-1a over length-prefixed parts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Canonical 16-digit lower-case hex rendering.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Incremental FNV-1a hasher with length-prefixed parts.
///
/// Every `write_*` call prefixes its payload with the byte length, so
/// part boundaries are part of the hash and concatenation ambiguities
/// cannot collide.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    h: u64,
}

impl Default for FingerprintHasher {
    fn default() -> FingerprintHasher {
        FingerprintHasher::new()
    }
}

impl FingerprintHasher {
    /// Hasher at the FNV-1a offset basis.
    pub fn new() -> FingerprintHasher {
        FingerprintHasher {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feeds one length-prefixed byte part.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.eat(&(bytes.len() as u64).to_le_bytes());
        self.eat(bytes);
        self
    }

    /// Feeds a UTF-8 string part.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_bytes(s.as_bytes())
    }

    /// Feeds an unsigned integer part.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Feeds a signed integer part.
    pub fn write_i64(&mut self, v: i64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Feeds a boolean part.
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write_bytes(&[v as u8])
    }

    /// Feeds an optional signed integer (absence hashes distinctly from
    /// every present value).
    pub fn write_opt_i64(&mut self, v: Option<i64>) -> &mut Self {
        match v {
            None => self.write_bytes(b"none"),
            Some(v) => {
                self.write_bytes(b"some");
                self.write_i64(v)
            }
        }
    }

    /// Feeds a nested fingerprint.
    pub fn write_fingerprint(&mut self, fp: Fingerprint) -> &mut Self {
        self.write_u64(fp.0)
    }

    /// Finishes the hash.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.h)
    }
}

/// Types with a canonical, API-owned content fingerprint.
///
/// Implementations feed every *behavior-relevant* field to the hasher
/// in a fixed documented order; cosmetic fields (display names) are
/// excluded.
pub trait Fingerprintable {
    /// Feeds this value's canonical encoding into `h`.
    fn feed(&self, h: &mut FingerprintHasher);

    /// The value's standalone fingerprint.
    fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        self.feed(&mut h);
        h.finish()
    }
}

impl Fingerprintable for CoreTiming {
    fn feed(&self, h: &mut FingerprintHasher) {
        for v in [
            self.int_alu,
            self.int_mul,
            self.int_div,
            self.float_add,
            self.float_mul,
            self.float_div,
            self.cmp,
            self.logic,
            self.cast,
            self.branch,
            self.loop_overhead,
            self.call_overhead,
            self.local_access,
            self.intrinsic_default,
        ] {
            h.write_u64(v);
        }
        h.write_u64(self.intrinsic_latency.len() as u64);
        for (name, lat) in &self.intrinsic_latency {
            h.write_str(name).write_u64(*lat);
        }
    }
}

impl Fingerprintable for CacheConfig {
    fn feed(&self, h: &mut FingerprintHasher) {
        h.write_u64(self.sets as u64)
            .write_u64(self.ways as u64)
            .write_u64(self.line_bytes)
            .write_u64(self.hit_cycles)
            .write_u64(self.miss_penalty);
    }
}

impl Fingerprintable for Arbitration {
    fn feed(&self, h: &mut FingerprintHasher) {
        match self {
            Arbitration::Tdma {
                slot_cycles,
                total_slots,
            } => {
                h.write_str("tdma")
                    .write_u64(*slot_cycles)
                    .write_u64(*total_slots);
            }
            Arbitration::Wrr {
                weights,
                slot_cycles,
            } => {
                h.write_str("wrr").write_u64(*slot_cycles);
                h.write_u64(weights.len() as u64);
                for w in weights {
                    h.write_u64(*w);
                }
            }
            Arbitration::FixedPriority { priorities } => {
                h.write_str("fixed-priority");
                h.write_u64(priorities.len() as u64);
                for p in priorities {
                    h.write_u64(*p as u64);
                }
            }
        }
    }
}

fn feed_core(core: &Core, h: &mut FingerprintHasher) {
    h.write_u64(core.id.0 as u64);
    h.write_str(match core.kind {
        CoreKind::XentiumDsp => "xentium",
        CoreKind::Leon3Risc => "leon3",
        CoreKind::Custom => "custom",
    });
    core.timing.feed(h);
    h.write_u64(core.spm_bytes).write_u64(core.spm_latency);
    match &core.cache {
        None => {
            h.write_str("no-cache");
        }
        Some(cfg) => {
            h.write_str("cache");
            cfg.feed(h);
        }
    }
    h.write_u64(core.tile.0 as u64)
        .write_u64(core.tile.1 as u64);
}

/// Canonical platform fingerprint.
///
/// Covers every behavior-relevant field — cores (timing tables,
/// scratchpads, caches, tiles), shared memory and interconnect — and
/// deliberately **excludes** the cosmetic [`Platform::name`]: two
/// platforms differing only in name produce identical analysis results
/// and must share cache entries.
impl Fingerprintable for Platform {
    fn feed(&self, h: &mut FingerprintHasher) {
        h.write_str("platform");
        h.write_u64(self.cores.len() as u64);
        for core in &self.cores {
            feed_core(core, h);
        }
        h.write_u64(self.shared.size_bytes)
            .write_u64(self.shared.latency);
        match &self.interconnect {
            Interconnect::Bus { arbitration } => {
                h.write_str("bus");
                arbitration.feed(h);
            }
            Interconnect::Noc {
                rows,
                cols,
                router_latency,
                link_latency,
                flit_bytes,
                wrr_weight,
            } => {
                h.write_str("noc")
                    .write_u64(*rows as u64)
                    .write_u64(*cols as u64)
                    .write_u64(*router_latency)
                    .write_u64(*link_latency)
                    .write_u64(*flit_bytes)
                    .write_u64(*wrr_weight);
            }
        }
    }
}

/// Canonical task-graph fingerprint: per-task costs and the dependence
/// edges — everything a scheduler observes. The cosmetic task `names`
/// and the `htg_ids` back-references are deliberately excluded: two
/// graphs differing only in labels schedule identically and must share
/// schedule-cache entries.
impl Fingerprintable for TaskGraph {
    fn feed(&self, h: &mut FingerprintHasher) {
        h.write_str("task-graph");
        h.write_u64(self.cost.len() as u64);
        for &c in &self.cost {
            h.write_u64(c);
        }
        h.write_u64(self.edges.len() as u64);
        for &(from, to, bytes) in &self.edges {
            h.write_u64(from as u64)
                .write_u64(to as u64)
                .write_u64(bytes);
        }
    }
}

/// Canonical cache key for one mapping-stage invocation: the task graph
/// (costs + edges), the platform and the scheduler kind — the third
/// cache tier of `argo-dse` (ROADMAP item (c)). Two invocations with
/// equal keys produce identical [`argo_sched::Schedule`]s, because
/// every scheduler in the workspace is a deterministic function of
/// these inputs (the annealer's seed is fixed).
///
/// Takes the platform as a precomputed [`Fingerprint`] so backend
/// feedback loops hash the platform once, not once per round.
pub fn schedule_fingerprint(
    graph: &TaskGraph,
    platform_fp: Fingerprint,
    scheduler: SchedulerKind,
) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("schedule-inputs");
    graph.feed(&mut h);
    h.write_fingerprint(platform_fp);
    h.write_str(scheduler.label());
    h.finish()
}

/// Canonical fingerprint of a program's slot resolution: per-function
/// frame layouts (name, frame length, slot symbol names in slot order,
/// parameter slots) plus the mirror's statement count. Resolution is a
/// pure function of the program, so this fingerprint is derivable from
/// the program fingerprint — feeding it into artifact hashes documents
/// the execution-shaped layout a cached artifact was built with, and
/// pins slot-assignment determinism cross-process (a resolver change
/// that reorders slots changes every artifact fingerprint loudly).
impl Fingerprintable for argo_ir::resolve::Resolution {
    fn feed(&self, h: &mut FingerprintHasher) {
        h.write_str("resolution");
        h.write_u64(self.symbol_count() as u64);
        h.write_u64(self.stmt_count() as u64);
        h.write_u64(self.functions.len() as u64);
        for f in &self.functions {
            h.write_str(self.name(f.name));
            h.write_u64(f.frame_len as u64);
            for &sym in &f.slot_symbols {
                h.write_str(self.name(sym));
            }
            h.write_u64(f.params.len() as u64);
            for p in &f.params {
                h.write_u64(p.slot.0 as u64).write_bool(p.is_array);
            }
        }
    }
}

impl Fingerprintable for ValueCtx {
    fn feed(&self, h: &mut FingerprintHasher) {
        h.write_str("value-ctx");
        h.write_u64(self.param_ranges.len() as u64);
        for (name, iv) in &self.param_ranges {
            h.write_str(name).write_opt_i64(iv.lo).write_opt_i64(iv.hi);
        }
    }
}

/// Canonical configuration fingerprint over every field, including the
/// backend-only ones (scheduler, MHP mode, feedback budget). Stage
/// cache keys use the narrower per-stage fingerprints on
/// [`Toolflow`](crate::Toolflow) instead, so sweeping a backend-only
/// axis still shares frontend artifacts.
impl Fingerprintable for ToolchainConfig {
    fn feed(&self, h: &mut FingerprintHasher) {
        h.write_str("toolchain-config");
        crate::feed_frontend_config(self, h);
        h.write_str(self.scheduler.label());
        h.write_str(match self.mhp {
            argo_wcet::system::MhpMode::Naive => "naive",
            argo_wcet::system::MhpMode::Static => "static",
            argo_wcet::system::MhpMode::Windows => "windows",
        });
        h.write_u64(self.feedback_rounds as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_prefixing_separates_parts() {
        let a = FingerprintHasher::new()
            .write_str("ab")
            .write_str("c")
            .finish();
        let b = FingerprintHasher::new()
            .write_str("a")
            .write_str("bc")
            .finish();
        assert_ne!(a, b);
        let empty = FingerprintHasher::new().finish();
        let one_empty = FingerprintHasher::new().write_str("").finish();
        assert_ne!(empty, one_empty);
    }

    #[test]
    fn platform_fingerprint_ignores_cosmetic_name() {
        let a = Platform::xentium_manycore(4);
        let mut b = Platform::xentium_manycore(4);
        b.name = "renamed".into();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn platform_fingerprint_sees_behavioral_fields() {
        let base = Platform::xentium_manycore(4);
        assert_ne!(
            base.fingerprint(),
            Platform::xentium_manycore(2).fingerprint()
        );
        let mut spm = Platform::xentium_manycore(4);
        spm.cores[0].spm_bytes = 1;
        assert_ne!(base.fingerprint(), spm.fingerprint());
        assert_ne!(
            base.fingerprint(),
            Platform::kit_tile_noc(2, 2).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            Platform::xentium_manycore(4)
                .with_caches(CacheConfig::small())
                .fingerprint()
        );
    }

    #[test]
    fn config_fingerprint_sees_every_axis() {
        let base = ToolchainConfig::default();
        let variants = vec![
            ToolchainConfig {
                chunk_loops: false,
                ..base.clone()
            },
            ToolchainConfig {
                scheduler: SchedulerKind::Anneal,
                ..base.clone()
            },
            ToolchainConfig {
                mhp: argo_wcet::system::MhpMode::Windows,
                ..base.clone()
            },
            ToolchainConfig {
                feedback_rounds: 7,
                ..base.clone()
            },
            ToolchainConfig {
                granularity: argo_htg::Granularity::Stmt,
                ..base.clone()
            },
            ToolchainConfig {
                value_ctx: ValueCtx::with_param("n", 0, 9),
                ..base
            },
        ];
        let base_fp = base.fingerprint();
        for v in variants {
            assert_ne!(base_fp, v.fingerprint(), "variant not hashed: {v:?}");
        }
        assert_eq!(base_fp, ToolchainConfig::default().fingerprint());
    }
}
