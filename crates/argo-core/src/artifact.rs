//! The typed stage artifacts of the toolflow pipeline and the common
//! [`Artifact`] trait.
//!
//! Each pipeline stage yields one owned artifact:
//!
//! | stage                              | artifact           |
//! |------------------------------------|--------------------|
//! | [`Stage::Frontend`]   | [`FrontendArtifact`] |
//! | [`Stage::SeedCosts`]  | [`CostTable`]        |
//! | [`Stage::Backend`]    | [`BackendResult`]    |
//!
//! All three implement [`Artifact`], whose `fingerprint()` is the
//! canonical content hash caches key on (see [`crate::fingerprint`]).
//!
//! [`Stage::Frontend`]: crate::Stage::Frontend
//! [`Stage::SeedCosts`]: crate::Stage::SeedCosts
//! [`Stage::Backend`]: crate::Stage::Backend

use crate::fingerprint::{Fingerprint, FingerprintHasher, Fingerprintable};
use argo_htg::{Htg, TaskId};
use argo_ir::ast::Program;
use argo_ir::resolve::Resolution;
use argo_parir::ParallelProgram;
use argo_wcet::system::SystemWcet;
use argo_wcet::value::LoopBounds;
use std::collections::BTreeMap;

/// A typed pipeline artifact with a canonical content fingerprint.
pub trait Artifact {
    /// Stable artifact-kind label (`"frontend-artifact"`, …).
    fn kind(&self) -> &'static str;

    /// Canonical content hash: equal contents hash equal across
    /// processes and runs.
    fn fingerprint(&self) -> Fingerprint;

    /// Short human-readable description for observer summaries.
    fn summary(&self) -> String;
}

/// The reusable result of the program-side compilation stages: the
/// transformed program, its loop bounds and the annotated HTG.
///
/// Two sessions that share `(program, entry, granularity, chunking,
/// core count, value context)` produce *identical* frontend artifacts
/// regardless of platform, scheduler or memory configuration — which is
/// what makes them cacheable across a design-space sweep (see the
/// `argo-dse` crate and [`crate::Toolflow::frontend_fingerprint`]).
#[derive(Debug, Clone)]
pub struct FrontendArtifact {
    /// The program after predictability transformations.
    pub program: Program,
    /// The slot resolution of the transformed program: interned
    /// symbols, per-function frame layouts and the resolved statement
    /// mirror. Computed once per frontend run, reused by the value
    /// analysis and by every interpreter the artifact's consumers
    /// spawn ([`argo_ir::interp::Interp::with_resolution`]) — and,
    /// because the artifact is what the `argo-dse` first-tier cache
    /// stores, shared across all design points with equal frontend
    /// fingerprints.
    pub resolution: Resolution,
    /// Loop bounds from the value analysis.
    pub bounds: LoopBounds,
    /// The extracted, access-annotated HTG.
    pub htg: Htg,
}

impl Fingerprintable for Htg {
    fn feed(&self, h: &mut FingerprintHasher) {
        h.write_str("htg").write_str(&self.function);
        h.write_u64(self.tasks.len() as u64);
        for t in &self.tasks {
            h.write_u64(t.id.0 as u64).write_str(&t.name);
            h.write_u64(t.stmts.len() as u64);
            for s in &t.stmts {
                h.write_u64(s.0 as u64);
            }
            h.write_u64(t.access_counts.len() as u64);
            for (var, n) in &t.access_counts {
                h.write_str(var).write_u64(*n);
            }
        }
        h.write_u64(self.edges.len() as u64);
        for e in &self.edges {
            h.write_u64(e.from.0 as u64)
                .write_u64(e.to.0 as u64)
                .write_u64(e.bytes)
                .write_bool(e.ordering_only);
        }
        h.write_u64(self.top_level.len() as u64);
        for t in &self.top_level {
            h.write_u64(t.0 as u64);
        }
        h.write_u64(self.privatizable.len() as u64);
        for v in &self.privatizable {
            h.write_str(v);
        }
    }
}

impl Artifact for FrontendArtifact {
    fn kind(&self) -> &'static str {
        "frontend-artifact"
    }

    fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write_str("frontend-artifact");
        h.write_str(&argo_ir::printer::print_program(&self.program));
        self.resolution.feed(&mut h);
        h.write_u64(self.bounds.len() as u64);
        for (sid, bound) in &self.bounds {
            h.write_u64(sid.0 as u64).write_u64(*bound);
        }
        self.htg.feed(&mut h);
        h.finish()
    }

    fn summary(&self) -> String {
        format!(
            "{} tasks ({} top-level), {} bounded loops",
            self.htg.len(),
            self.htg.top_level.len(),
            self.bounds.len()
        )
    }
}

/// Per-task isolated code-level WCETs, keyed by HTG task id — the
/// seed-costs stage artifact (feedback round 0, all-shared placement).
///
/// Dereferences to the underlying `BTreeMap<TaskId, u64>`, so map
/// iteration and lookups work unchanged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostTable {
    costs: BTreeMap<TaskId, u64>,
}

/// Legacy alias for [`CostTable`] (the pre-session driver exposed the
/// bare map type under this name).
pub type TaskCosts = CostTable;

impl CostTable {
    /// Empty table.
    pub fn new() -> CostTable {
        CostTable::default()
    }
}

impl From<BTreeMap<TaskId, u64>> for CostTable {
    fn from(costs: BTreeMap<TaskId, u64>) -> CostTable {
        CostTable { costs }
    }
}

impl std::ops::Deref for CostTable {
    type Target = BTreeMap<TaskId, u64>;

    fn deref(&self) -> &BTreeMap<TaskId, u64> {
        &self.costs
    }
}

impl std::ops::DerefMut for CostTable {
    fn deref_mut(&mut self) -> &mut BTreeMap<TaskId, u64> {
        &mut self.costs
    }
}

impl Artifact for CostTable {
    fn kind(&self) -> &'static str {
        "cost-table"
    }

    fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write_str("cost-table");
        h.write_u64(self.costs.len() as u64);
        for (tid, w) in &self.costs {
            h.write_u64(tid.0 as u64).write_u64(*w);
        }
        h.finish()
    }

    fn summary(&self) -> String {
        format!(
            "{} task WCETs, total {} cycles",
            self.costs.len(),
            self.costs.values().sum::<u64>()
        )
    }
}

/// Everything the backend produced for one program/platform pair — the
/// final pipeline artifact.
#[derive(Debug, Clone)]
pub struct BackendResult {
    /// The explicitly parallel program (schedule, plans, memory map).
    pub parallel: ParallelProgram,
    /// System-level WCET analysis result; `system.bound` is the headline
    /// guaranteed parallel WCET.
    pub system: SystemWcet,
    /// WCET bound of the same task set executed sequentially on one core
    /// (with the same memory map) — the speedup baseline.
    pub sequential_bound: u64,
    /// Per-task isolated WCETs (final feedback round).
    pub iso_costs: Vec<u64>,
    /// Per-task worst-case shared-access counts.
    pub shared_accesses: Vec<u64>,
    /// Loop bounds used by the code-level analysis.
    pub bounds: LoopBounds,
    /// The HTG (post-transformation).
    pub htg: Htg,
    /// Feedback iterations actually performed.
    pub feedback_iterations: u32,
}

/// Legacy alias for [`BackendResult`] (the pre-session driver returned
/// this type under the name `ToolchainResult`).
pub type ToolchainResult = BackendResult;

impl BackendResult {
    /// Guaranteed WCET speedup of the parallel version over sequential
    /// execution (values < 1 mean parallelization did not pay off).
    pub fn wcet_speedup(&self) -> f64 {
        self.sequential_bound as f64 / self.system.bound.max(1) as f64
    }

    /// Human-readable summary report.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "ARGO tool-chain report — entry `{}`",
            self.parallel.entry
        );
        let _ = writeln!(
            s,
            "  tasks: {}   signals: {}   feedback iterations: {}",
            self.parallel.graph.len(),
            self.parallel.sync_count(),
            self.feedback_iterations
        );
        let _ = writeln!(
            s,
            "  sequential WCET bound: {:>12} cycles",
            self.sequential_bound
        );
        let _ = writeln!(
            s,
            "  parallel   WCET bound: {:>12} cycles",
            self.system.bound
        );
        let _ = writeln!(s, "  guaranteed speedup:    {:>12.2}x", self.wcet_speedup());
        let _ = writeln!(s, "  per-task (iso → inflated, contenders):");
        for t in 0..self.parallel.graph.len() {
            let _ = writeln!(
                s,
                "    {:<24} core{} {:>9} → {:>9}  k={}",
                self.parallel.graph.names[t],
                self.parallel.schedule.assignment[t].0,
                self.system.iso_wcet[t],
                self.system.task_wcet[t],
                self.system.contenders[t],
            );
        }
        s
    }
}

impl Artifact for BackendResult {
    fn kind(&self) -> &'static str {
        "backend-result"
    }

    fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write_str("backend-result");
        h.write_str(&self.parallel.entry);
        h.write_u64(self.system.bound)
            .write_u64(self.sequential_bound)
            .write_u64(self.feedback_iterations as u64);
        for series in [
            &self.iso_costs,
            &self.shared_accesses,
            &self.system.iso_wcet,
            &self.system.task_wcet,
        ] {
            h.write_u64(series.len() as u64);
            for v in series {
                h.write_u64(*v);
            }
        }
        h.write_u64(self.system.contenders.len() as u64);
        for k in &self.system.contenders {
            h.write_u64(*k as u64);
        }
        h.write_u64(self.parallel.schedule.assignment.len() as u64);
        for c in &self.parallel.schedule.assignment {
            h.write_u64(c.0 as u64);
        }
        h.finish()
    }

    fn summary(&self) -> String {
        format!(
            "{} tasks, bound {} (seq {}), speedup {:.2}x, {} feedback rounds",
            self.parallel.graph.len(),
            self.system.bound,
            self.sequential_bound,
            self.wcet_speedup(),
            self.feedback_iterations
        )
    }
}
