//! Structured tool-flow diagnostics.
//!
//! The legacy driver reported failures as `ToolchainError { stage:
//! &'static str, msg }` — a stringly-typed pair that callers could only
//! compare against magic literals. [`Diagnostic`] replaces it with a
//! typed triple: the pipeline [`Stage`] the failure belongs to, a
//! machine-matchable [`ErrorCode`], and (when known) the offending
//! entity (a function, loop, core or variable name), plus a rendered
//! human-readable message.

use std::fmt;

/// The coarse pipeline stage a session runs (and a diagnostic belongs
/// to). The first three are the artifact-producing stages of the staged
/// driver — `frontend → seed-costs → backend` — mirroring the cache
/// tiers of `argo-dse`; the fourth is the independent static checker
/// (`argo-verify`) run over a finished backend result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Program-side stages: validation, predictability transformations,
    /// loop-bound value analysis, HTG extraction (§ II-B).
    Frontend,
    /// Round-0 code-level WCET seeding (platform-dependent, scheduler-
    /// independent).
    SeedCosts,
    /// Platform-side stages: the schedule ↔ placement ↔ WCET feedback
    /// loop (§ II-E), parallel model (§ II-C), system-level WCET
    /// (§ II-D).
    Backend,
    /// Independent static verification of the backend's claims: MHP
    /// race detection, schedule/placement soundness, IR lints
    /// (`argo-verify`).
    Verify,
}

impl Stage {
    /// Stable lower-case label (used in rendered messages and reports).
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Frontend => "frontend",
            Stage::SeedCosts => "seed-costs",
            Stage::Backend => "backend",
            Stage::Verify => "verify",
        }
    }

    /// All stages in pipeline order.
    pub fn all() -> [Stage; 4] {
        [
            Stage::Frontend,
            Stage::SeedCosts,
            Stage::Backend,
            Stage::Verify,
        ]
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Machine-matchable classification of a tool-flow failure.
///
/// See the error-code table in the [crate-level docs](crate) for the
/// mapping from the legacy stage strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The input (or transformed) program failed IR validation.
    InvalidProgram,
    /// A program/use-case *name* could not be resolved to a program at
    /// all (emitted by drivers that look programs up by name, e.g. the
    /// `argo-dse` explorer's use-case registry).
    UnknownProgram,
    /// The requested entry function does not exist in the program.
    UnknownEntry,
    /// A session method that needs a platform was run on a session
    /// built without [`crate::Toolflow::platform`].
    MissingPlatform,
    /// The platform description is inconsistent (zero cores, bad WRR
    /// weights, mesh overflow, …).
    InvalidPlatform,
    /// A predictability transformation (constant folding, DOALL
    /// chunking) failed.
    TransformFailed,
    /// The value analysis could not bound a loop's trip count — WCET
    /// analysis is impossible for the program as written.
    UnboundedLoop,
    /// HTG task extraction failed.
    ExtractionFailed,
    /// Task extraction produced no top-level tasks (the entry function
    /// has no statements to parallelize).
    EmptyHtg,
    /// The code-level WCET analysis (function or task level) failed.
    CodeWcetFailed,
    /// WCET-directed memory placement failed.
    MemAssignFailed,
    /// Construction of the explicitly parallel program model failed.
    ParallelModelFailed,
    /// Two tasks that may happen in parallel perform conflicting
    /// accesses to the same memory (`argo-verify` race detector).
    DataRace,
    /// A schedule violates precedence, timing-consistency or per-core
    /// exclusivity constraints (`argo-verify` schedule validator).
    UnsoundSchedule,
    /// A memory placement exceeds a scratchpad's byte budget
    /// (`argo-verify` placement validator).
    PlacementOverflow,
    /// Per-core plans mis-order signal/wait synchronization relative to
    /// the tasks they protect (`argo-verify` comm-ordering check).
    CommOrdering,
    /// Lint: a scalar may be read before any assignment reaches it
    /// (`argo-verify` def-before-use dataflow).
    UninitRead,
    /// Lint: a scalar is assigned but its value is never read
    /// (`argo-verify`).
    DeadStore,
    /// Lint: a statement can never execute (it follows a `return` in
    /// its block) (`argo-verify`).
    UnreachableStmt,
    /// An infrastructure failure inside the toolflow itself — a worker
    /// panic caught at an isolation boundary, an unexpected internal
    /// invariant violation. Unlike every code above it says nothing
    /// about the *program*: retrying the identical request may succeed.
    InternalError,
    /// The request's deadline elapsed before the pipeline finished; the
    /// session was cancelled at a stage boundary. Transient by
    /// definition — the same request may finish under a looser deadline.
    DeadlineExceeded,
    /// A coalesced (single-flight) request's leader failed before
    /// producing a result; the follower received no answer. Transient:
    /// a fresh request elects a fresh leader.
    LeaderFailed,
}

impl ErrorCode {
    /// Stable kebab-case label (used in rendered messages and reports).
    pub fn label(&self) -> &'static str {
        match self {
            ErrorCode::InvalidProgram => "invalid-program",
            ErrorCode::UnknownProgram => "unknown-program",
            ErrorCode::UnknownEntry => "unknown-entry",
            ErrorCode::MissingPlatform => "missing-platform",
            ErrorCode::InvalidPlatform => "invalid-platform",
            ErrorCode::TransformFailed => "transform-failed",
            ErrorCode::UnboundedLoop => "unbounded-loop",
            ErrorCode::ExtractionFailed => "extraction-failed",
            ErrorCode::EmptyHtg => "empty-htg",
            ErrorCode::CodeWcetFailed => "code-wcet-failed",
            ErrorCode::MemAssignFailed => "mem-assign-failed",
            ErrorCode::ParallelModelFailed => "parallel-model-failed",
            ErrorCode::DataRace => "data-race",
            ErrorCode::UnsoundSchedule => "unsound-schedule",
            ErrorCode::PlacementOverflow => "placement-overflow",
            ErrorCode::CommOrdering => "comm-ordering",
            ErrorCode::UninitRead => "uninit-read",
            ErrorCode::DeadStore => "dead-store",
            ErrorCode::UnreachableStmt => "unreachable-stmt",
            ErrorCode::InternalError => "internal-error",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::LeaderFailed => "leader-failed",
        }
    }

    /// `true` for failures of the *infrastructure* rather than the
    /// program: panics caught at isolation boundaries
    /// ([`ErrorCode::InternalError`]), elapsed request deadlines
    /// ([`ErrorCode::DeadlineExceeded`]) and single-flight leader
    /// failures ([`ErrorCode::LeaderFailed`]).
    ///
    /// Transient diagnostics are **not deterministic in the request's
    /// inputs** — retrying the identical request may succeed — so they
    /// must never be archived in content-addressed caches (the
    /// `argo-dse` point tier persists ordinary diagnostics as part of a
    /// point's outcome, but skips transient ones: a cached
    /// `deadline-exceeded` would replay forever).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ErrorCode::InternalError | ErrorCode::DeadlineExceeded | ErrorCode::LeaderFailed
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A structured tool-flow failure: stage, code, offending entity and a
/// rendered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The pipeline stage the failing input/step belongs to.
    pub stage: Stage,
    /// Machine-matchable failure classification.
    pub code: ErrorCode,
    /// The offending entity when one is known: a function, loop, core,
    /// platform or variable name.
    pub entity: Option<String>,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic with no entity.
    pub fn new(stage: Stage, code: ErrorCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            stage,
            code,
            entity: None,
            message: message.into(),
        }
    }

    /// Attaches the offending entity.
    #[must_use]
    pub fn with_entity(mut self, entity: impl Into<String>) -> Diagnostic {
        self.entity = Some(entity.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "toolflow error [{}/{}]", self.stage, self.code)?;
        if let Some(entity) = &self.entity {
            write!(f, " at `{entity}`")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_includes_stage_code_and_entity() {
        let d = Diagnostic::new(Stage::Frontend, ErrorCode::UnknownEntry, "no such function")
            .with_entity("main2");
        let s = d.to_string();
        assert!(s.contains("[frontend/unknown-entry]"), "{s}");
        assert!(s.contains("`main2`"), "{s}");
        assert!(s.contains("no such function"), "{s}");
    }

    #[test]
    fn rendering_without_entity_omits_backticks() {
        let d = Diagnostic::new(Stage::Backend, ErrorCode::InvalidPlatform, "no cores");
        assert_eq!(
            d.to_string(),
            "toolflow error [backend/invalid-platform]: no cores"
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Stage::SeedCosts.label(), "seed-costs");
        assert_eq!(Stage::Verify.label(), "verify");
        assert_eq!(ErrorCode::EmptyHtg.label(), "empty-htg");
        assert_eq!(ErrorCode::DataRace.label(), "data-race");
        assert_eq!(ErrorCode::UnsoundSchedule.label(), "unsound-schedule");
        assert_eq!(ErrorCode::InternalError.label(), "internal-error");
        assert_eq!(ErrorCode::DeadlineExceeded.label(), "deadline-exceeded");
        assert_eq!(ErrorCode::LeaderFailed.label(), "leader-failed");
        assert_eq!(Stage::all().len(), 4);
    }

    #[test]
    fn transient_codes_are_exactly_the_infrastructure_ones() {
        assert!(ErrorCode::InternalError.is_transient());
        assert!(ErrorCode::DeadlineExceeded.is_transient());
        assert!(ErrorCode::LeaderFailed.is_transient());
        for code in [
            ErrorCode::InvalidProgram,
            ErrorCode::UnboundedLoop,
            ErrorCode::DataRace,
            ErrorCode::UnsoundSchedule,
            ErrorCode::UnreachableStmt,
        ] {
            assert!(!code.is_transient(), "{code} must be deterministic");
        }
    }
}
