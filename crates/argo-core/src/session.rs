//! The [`Toolflow`] session: a typed, observable, fingerprint-native
//! driver for the ARGO pipeline.
//!
//! A session binds a program, its entry function, a target platform, a
//! [`ToolchainConfig`] and (optionally) a [`StageObserver`], then runs
//! the pipeline either whole ([`Toolflow::run`]) or stage by stage
//! ([`Toolflow::run_frontend`] → [`Toolflow::run_seed_costs`] →
//! [`Toolflow::run_backend`]), each stage yielding an owned
//! [`Artifact`] type. Stage input fingerprints
//! ([`Toolflow::frontend_fingerprint`],
//! [`Toolflow::seed_cost_fingerprint`]) are API-owned content hashes —
//! two sessions with equal stage fingerprints produce identical stage
//! artifacts, which is the contract the `argo-dse` artifact cache keys
//! on.

use crate::artifact::{Artifact, BackendResult, CostTable, FrontendArtifact};
use crate::diag::{Diagnostic, ErrorCode, Stage};
use crate::fingerprint::{Fingerprint, FingerprintHasher, Fingerprintable};
use crate::observer::{FeedbackSnapshot, StageObserver, StageSummary};
use crate::ToolchainConfig;
use argo_adl::{MemSpace, MemoryMap, Placement, Platform};
use argo_htg::accesses::AnnotateCtx;
use argo_htg::extract::extract;
use argo_ir::ast::Program;
use argo_parir::ParallelProgram;
use argo_sched::anneal::SimulatedAnnealing;
use argo_sched::bnb::BranchAndBound;
use argo_sched::list::ListScheduler;
use argo_sched::{evaluate_assignment, CommModel, SchedCtx, Schedule, Scheduler, TaskGraph};
use argo_transform::chunk::chunk_all_parallel_loops;
use argo_transform::fold::ConstantFold;
use argo_transform::Pass;
use argo_wcet::cost::{program_symbols, CostCtx};
use argo_wcet::schema::{function_wcets, stmt_ids_wcet};
use argo_wcet::system::{analyze, task_shared_accesses};
use argo_wcet::value::loop_bounds_resolved;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Feeds the configuration fields the *frontend* stage observes —
/// shared between the full config fingerprint and the frontend stage
/// fingerprint so the two can never drift apart.
pub(crate) fn feed_frontend_config(cfg: &ToolchainConfig, h: &mut FingerprintHasher) {
    h.write_str(match cfg.granularity {
        argo_htg::Granularity::Loop => "loop",
        argo_htg::Granularity::Block => "block",
        argo_htg::Granularity::Stmt => "stmt",
    });
    h.write_bool(cfg.chunk_loops);
    cfg.value_ctx.feed(h);
}

/// Cache hook for mapping-stage results, keyed by
/// [`crate::fingerprint::schedule_fingerprint`] — the third cache tier
/// of `argo-dse` (ROADMAP item (c)).
///
/// The backend's § II-E feedback loop invokes the scheduler once per
/// round on the round's re-costed task graph. Sweep axes that do not
/// move the graph or the platform (the MHP mode, the feedback budget)
/// re-derive byte-identical schedules; a cache bound via
/// [`Toolflow::schedule_cache`] intercepts each invocation and may
/// serve it from a previous session. Implementations must be
/// `Sync` (DSE workers share one cache) and must return exactly what
/// `build()` would return for the key — every workspace scheduler is a
/// deterministic function of the key's inputs, so memoization is
/// sound.
pub trait ScheduleCache: Sync {
    /// Returns the schedule for `key`, calling `build` on a miss.
    fn schedule(&self, key: Fingerprint, build: &mut dyn FnMut() -> Schedule) -> Schedule;
}

/// One toolflow invocation: program + entry + platform + config (+
/// observer), with typed staged execution and canonical stage
/// fingerprints.
///
/// Built with a fluent builder:
///
/// ```
/// use argo_adl::Platform;
/// use argo_core::{Toolflow, ToolchainConfig};
///
/// let src = "real main(real a[16], real b[16]) {
///                real s; int i;
///                s = 0.0;
///                for (i = 0; i < 16; i = i + 1) { b[i] = a[i] * 2.0; }
///                for (i = 0; i < 16; i = i + 1) { s = s + b[i]; }
///                return s;
///            }";
/// let program = argo_ir::parse::parse_program(src).unwrap();
/// let platform = Platform::xentium_manycore(2);
/// let result = Toolflow::new(program, "main")
///     .platform(&platform)
///     .config(ToolchainConfig::default())
///     .run()
///     .unwrap();
/// assert!(result.system.bound > 0);
/// ```
///
/// Run methods take `&self`, so one session can drive several stage
/// executions. Callers that sweep many sessions over one resolved
/// program (the design-space explorer) construct sessions with
/// [`Toolflow::borrowed`] — no per-session deep clone — and forward the
/// once-computed [`Toolflow::program_fingerprint`] via
/// [`Toolflow::with_program_fingerprint`] so fingerprinting stays off
/// the cache-hit hot path.
pub struct Toolflow<'a> {
    program: Cow<'a, Program>,
    entry: String,
    platform: Option<&'a Platform>,
    cfg: ToolchainConfig,
    observer: Option<&'a dyn StageObserver>,
    sched_cache: Option<&'a dyn ScheduleCache>,
    /// Memoized content fingerprint of the (printed) program.
    program_fp: OnceLock<Fingerprint>,
    /// Per-session observer-event sequence counter (see
    /// [`StageObserver`]): shared by every stage this session runs, so
    /// event `seq` numbers are strictly increasing across the whole
    /// session, including extension stages.
    seq: AtomicU64,
}

impl<'a> Toolflow<'a> {
    /// New session owning `program`, starting at `entry`, with the
    /// default configuration and no platform bound yet.
    pub fn new(program: Program, entry: &str) -> Toolflow<'a> {
        Toolflow {
            program: Cow::Owned(program),
            entry: entry.to_string(),
            platform: None,
            cfg: ToolchainConfig::default(),
            observer: None,
            sched_cache: None,
            program_fp: OnceLock::new(),
            seq: AtomicU64::new(0),
        }
    }

    /// New session borrowing `program` — no deep clone until a stage
    /// actually needs an owned copy (the frontend, on a cache miss).
    /// This is the constructor for sweep drivers that evaluate many
    /// configurations of one program.
    pub fn borrowed(program: &'a Program, entry: &str) -> Toolflow<'a> {
        Toolflow {
            program: Cow::Borrowed(program),
            entry: entry.to_string(),
            platform: None,
            cfg: ToolchainConfig::default(),
            observer: None,
            sched_cache: None,
            program_fp: OnceLock::new(),
            seq: AtomicU64::new(0),
        }
    }

    /// Binds the target platform (required by every run method).
    #[must_use]
    pub fn platform(mut self, platform: &'a Platform) -> Toolflow<'a> {
        self.platform = Some(platform);
        self
    }

    /// Replaces the toolchain configuration.
    #[must_use]
    pub fn config(mut self, cfg: ToolchainConfig) -> Toolflow<'a> {
        self.cfg = cfg;
        self
    }

    /// Attaches a stage observer. Every run method emits paired
    /// start/terminal events for the stages it runs (`finish` on
    /// success, `error` on failure); the backend also emits one
    /// [`FeedbackSnapshot`] per § II-E feedback round.
    #[must_use]
    pub fn observer(mut self, observer: &'a dyn StageObserver) -> Toolflow<'a> {
        self.observer = Some(observer);
        self
    }

    /// Attaches a schedule cache (the `argo-dse` third cache tier):
    /// every mapping-stage invocation inside the backend's feedback
    /// loop is routed through it, keyed by
    /// [`crate::fingerprint::schedule_fingerprint`].
    #[must_use]
    pub fn schedule_cache(mut self, cache: &'a dyn ScheduleCache) -> Toolflow<'a> {
        self.sched_cache = Some(cache);
        self
    }

    /// Seeds the memoized program fingerprint with a value previously
    /// returned by [`Toolflow::program_fingerprint`] for an *equal*
    /// program, skipping the print-and-hash pass on this session.
    /// Sweep drivers compute the fingerprint once per resolved program
    /// and forward it to every point's session; passing a fingerprint
    /// of a different program corrupts cache keys.
    #[must_use]
    pub fn with_program_fingerprint(self, fp: Fingerprint) -> Toolflow<'a> {
        let _ = self.program_fp.set(fp);
        self
    }

    /// The session's entry function name.
    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// The session's configuration.
    pub fn cfg(&self) -> &ToolchainConfig {
        &self.cfg
    }

    /// The platform bound via [`Toolflow::platform`], if any. Extension
    /// layers (e.g. the `argo-verify` checker) use this to re-derive
    /// platform-dependent facts from the same description the backend
    /// saw.
    pub fn configured_platform(&self) -> Option<&'a Platform> {
        self.platform
    }

    /// The observer attached via [`Toolflow::observer`], if any, so
    /// extension stages can emit the same paired start/finish events
    /// the built-in stages do.
    pub fn configured_observer(&self) -> Option<&'a dyn StageObserver> {
        self.observer
    }

    /// Allocates the next observer-event sequence number from the
    /// session's counter. Extension stages (e.g. `argo-verify`'s
    /// `run_verify`) draw from this so their events slot into the same
    /// strictly increasing per-session sequence as the built-in stages.
    pub fn next_observer_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    fn require_platform(&self, stage: Stage) -> Result<&'a Platform, Diagnostic> {
        self.platform.ok_or_else(|| {
            Diagnostic::new(
                stage,
                ErrorCode::MissingPlatform,
                "session has no platform; call Toolflow::platform(..) before running",
            )
        })
    }

    /// Canonical content fingerprint of the session's program (a hash
    /// of its printed text), memoized per session and seedable via
    /// [`Toolflow::with_program_fingerprint`].
    pub fn program_fingerprint(&self) -> Fingerprint {
        *self.program_fp.get_or_init(|| {
            FingerprintHasher::new()
                .write_str("program")
                .write_str(&argo_ir::printer::print_program(&self.program))
                .finish()
        })
    }

    /// Canonical fingerprint of the frontend stage *inputs*: program
    /// content, entry, the frontend-relevant configuration
    /// (granularity, chunking, value context) and the platform's core
    /// count — the only platform property the frontend observes. Two
    /// sessions with equal frontend fingerprints produce identical
    /// [`FrontendArtifact`]s, so this is the first-tier cache key of
    /// `argo-dse`.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::MissingPlatform`] when no platform is bound.
    pub fn frontend_fingerprint(&self) -> Result<Fingerprint, Diagnostic> {
        let platform = self.require_platform(Stage::Frontend)?;
        let mut h = FingerprintHasher::new();
        h.write_str("frontend-inputs");
        h.write_fingerprint(self.program_fingerprint())
            .write_str(&self.entry);
        feed_frontend_config(&self.cfg, &mut h);
        h.write_u64(platform.core_count() as u64);
        Ok(h.finish())
    }

    /// Canonical fingerprint of the seed-costs stage *inputs*: the
    /// frontend fingerprint plus the full platform fingerprint (the
    /// round-0 cost table depends on both, but not on the scheduler,
    /// MHP mode or feedback budget) — the second-tier cache key of
    /// `argo-dse`.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::MissingPlatform`] when no platform is bound.
    pub fn seed_cost_fingerprint(&self) -> Result<Fingerprint, Diagnostic> {
        let platform = self.require_platform(Stage::SeedCosts)?;
        let mut h = FingerprintHasher::new();
        h.write_str("seed-cost-inputs");
        h.write_fingerprint(self.frontend_fingerprint()?);
        platform.feed(&mut h);
        Ok(h.finish())
    }

    /// Runs the frontend stage: validation, predictability
    /// transformations (§ II-B), loop-bound value analysis and HTG task
    /// extraction with access annotation.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] naming the failing step (see the
    /// error-code table in the [crate docs](crate)).
    pub fn run_frontend(&self) -> Result<FrontendArtifact, Diagnostic> {
        let platform = self.require_platform(Stage::Frontend)?;
        run_frontend_impl(
            self.program.as_ref().clone(),
            &self.entry,
            platform.core_count(),
            &self.cfg,
            self.observer,
            &self.seq,
        )
    }

    /// Runs the seed-costs stage on a frontend artifact: every task
    /// costed on core 0 under the conservative all-shared placement
    /// (feedback round 0).
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] if the code-level analysis fails.
    pub fn run_seed_costs(&self, artifact: &FrontendArtifact) -> Result<CostTable, Diagnostic> {
        let platform = self.require_platform(Stage::SeedCosts)?;
        run_seed_costs_impl(artifact, &self.entry, platform, self.observer, &self.seq)
    }

    /// Runs the backend stage on a frontend artifact: the iterative
    /// schedule ↔ placement ↔ WCET feedback loop (§ II-E), parallel
    /// model construction (§ II-C) and system-level WCET analysis
    /// (§ II-D).
    ///
    /// `seed` optionally supplies the round-0 task costs (as produced
    /// by [`Toolflow::run_seed_costs`] for the same artifact and
    /// platform), skipping the first code-level WCET pass; the result
    /// is identical either way.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] naming the failing step.
    pub fn run_backend(
        &self,
        artifact: FrontendArtifact,
        seed: Option<&CostTable>,
    ) -> Result<BackendResult, Diagnostic> {
        let platform = self.require_platform(Stage::Backend)?;
        run_backend_impl(
            artifact,
            &self.entry,
            platform,
            &self.cfg,
            seed,
            self.observer,
            &self.seq,
            self.sched_cache,
        )
    }

    /// Runs the complete pipeline: platform validation, frontend,
    /// backend. Equivalent to the staged sequence and bit-identical to
    /// the legacy [`crate::compile`] free function (which is now a thin
    /// wrapper over a default session).
    ///
    /// # Errors
    ///
    /// Returns the first stage's [`Diagnostic`].
    pub fn run(&self) -> Result<BackendResult, Diagnostic> {
        let platform = self.require_platform(Stage::Backend)?;
        validate_platform(platform)?;
        let artifact = self.run_frontend()?;
        self.run_backend(artifact, None)
    }
}

/// Maps a platform-validation failure to a backend diagnostic.
pub(crate) fn validate_platform(platform: &Platform) -> Result<(), Diagnostic> {
    platform.validate().map_err(|e| {
        Diagnostic::new(Stage::Backend, ErrorCode::InvalidPlatform, e.to_string())
            .with_entity(&platform.name)
    })
}

/// Runs `body` bracketed by observer events for `stage`: a start event
/// first, then exactly one terminal event (finish with the artifact
/// summary, or error with the diagnostic). When no observer is
/// attached, the summary (fingerprint + detail) is never computed.
///
/// Before anything starts, the observer's
/// [`StageObserver::checkpoint`] is polled; a cancelled/expired
/// request aborts here with the checkpoint's diagnostic and emits *no*
/// events for the stage — the event stream stays well-nested and no
/// partial stage ever runs.
fn observed_stage<T: Artifact>(
    obs: Option<&dyn StageObserver>,
    seq: &AtomicU64,
    stage: Stage,
    body: impl FnOnce() -> Result<T, Diagnostic>,
) -> Result<T, Diagnostic> {
    if let Some(obs) = obs {
        obs.checkpoint(stage)?;
    }
    // Stage span on the global tracer (inert unless `--trace` enabled
    // it); sub-phase and per-point spans opened inside `body` nest
    // under it on the same thread.
    let _span = argo_trace::span(crate::observer::stage_span_name(stage));
    let Some(obs) = obs else {
        return body();
    };
    obs.on_stage_start(stage, seq.fetch_add(1, Ordering::Relaxed));
    let t0 = Instant::now();
    match body() {
        Ok(artifact) => {
            obs.on_stage_finish(&StageSummary {
                seq: seq.fetch_add(1, Ordering::Relaxed),
                stage,
                fingerprint: artifact.fingerprint(),
                detail: artifact.summary(),
                elapsed: t0.elapsed(),
            });
            Ok(artifact)
        }
        Err(diagnostic) => {
            obs.on_stage_error(stage, seq.fetch_add(1, Ordering::Relaxed), &diagnostic);
            Err(diagnostic)
        }
    }
}

fn frontend_err(code: ErrorCode, e: impl std::fmt::Display) -> Diagnostic {
    Diagnostic::new(Stage::Frontend, code, e.to_string())
}

/// The frontend stage implementation (shared by sessions and the
/// legacy free functions). `core_count` is the only platform property
/// the frontend observes: it controls DOALL chunking.
pub(crate) fn run_frontend_impl(
    mut program: Program,
    entry: &str,
    core_count: usize,
    cfg: &ToolchainConfig,
    obs: Option<&dyn StageObserver>,
    seq: &AtomicU64,
) -> Result<FrontendArtifact, Diagnostic> {
    observed_stage(obs, seq, Stage::Frontend, move || {
        argo_ir::validate::validate(&program)
            .map_err(|e| frontend_err(ErrorCode::InvalidProgram, e))?;
        if program.function(entry).is_none() {
            return Err(Diagnostic::new(
                Stage::Frontend,
                ErrorCode::UnknownEntry,
                format!("no function `{entry}` in program"),
            )
            .with_entity(entry));
        }

        // --- Program analysis & predictability transformations (§ II-B).
        ConstantFold
            .run(&mut program)
            .map_err(|e| frontend_err(ErrorCode::TransformFailed, e))?;
        program.renumber();
        if cfg.chunk_loops && core_count > 1 {
            chunk_all_parallel_loops(&mut program, entry, core_count)
                .map_err(|e| frontend_err(ErrorCode::TransformFailed, e))?;
            ConstantFold
                .run(&mut program)
                .map_err(|e| frontend_err(ErrorCode::TransformFailed, e))?;
            program.renumber();
        }
        argo_ir::validate::validate(&program)
            .map_err(|e| frontend_err(ErrorCode::InvalidProgram, e))?;

        // --- Slot resolution of the final (transformed, renumbered)
        // program: one pass, reused by the value analysis below, stored
        // in the artifact for every downstream interpreter.
        let resolution = argo_ir::resolve::Resolution::of(&program);

        // --- Loop bounds (value analysis).
        let bounds = loop_bounds_resolved(&resolution, entry, &cfg.value_ctx)
            .map_err(|e| frontend_err(ErrorCode::UnboundedLoop, e).with_entity(entry))?;

        // --- Task extraction (HTG) + access annotation.
        let mut htg = extract(&program, entry, cfg.granularity)
            .map_err(|e| frontend_err(ErrorCode::ExtractionFailed, e))?;
        let actx = AnnotateCtx {
            bounds: bounds.clone(),
            default_bound: 1,
        };
        argo_htg::accesses::annotate(&mut htg, &program, &actx);
        if htg.top_level.is_empty() {
            return Err(Diagnostic::new(
                Stage::Frontend,
                ErrorCode::EmptyHtg,
                format!("entry `{entry}` produced no top-level tasks (empty function body?)"),
            )
            .with_entity(entry));
        }

        Ok(FrontendArtifact {
            program,
            resolution,
            bounds,
            htg,
        })
    })
}

fn seed_err(e: impl std::fmt::Display) -> Diagnostic {
    Diagnostic::new(Stage::SeedCosts, ErrorCode::CodeWcetFailed, e.to_string())
}

/// The seed-costs stage implementation: feedback round 0 — every task
/// costed on core 0 with the conservative all-shared memory placement.
/// The table depends only on `(artifact, entry, platform)`, not on the
/// scheduler or MHP mode, so design-space points that share a platform
/// and program can reuse it (the second cache tier of `argo-dse`).
pub(crate) fn run_seed_costs_impl(
    artifact: &FrontendArtifact,
    entry: &str,
    platform: &Platform,
    obs: Option<&dyn StageObserver>,
    seq: &AtomicU64,
) -> Result<CostTable, Diagnostic> {
    observed_stage(obs, seq, Stage::SeedCosts, || {
        let mem = all_shared_map(&artifact.program, entry);
        let ctx = CostCtx::new(&artifact.program, platform, argo_adl::CoreId(0), 1, &mem);
        let fw = function_wcets(&ctx, &artifact.bounds).map_err(seed_err)?;
        let mut costs: BTreeMap<argo_htg::TaskId, u64> = BTreeMap::new();
        for &tid in &artifact.htg.top_level {
            let task = artifact.htg.task(tid);
            let w = stmt_ids_wcet(&ctx, &artifact.bounds, &fw, entry, &task.stmts)
                .map_err(|e| seed_err(e).with_entity(task.name.clone()))?;
            costs.insert(tid, w.max(1));
        }
        Ok(CostTable::from(costs))
    })
}

fn backend_err(code: ErrorCode, e: impl std::fmt::Display) -> Diagnostic {
    Diagnostic::new(Stage::Backend, code, e.to_string())
}

/// The backend stage implementation: iterative feedback loop, parallel
/// model, system-level WCET, sequential baseline.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_backend_impl(
    artifact: FrontendArtifact,
    entry: &str,
    platform: &Platform,
    cfg: &ToolchainConfig,
    seed: Option<&CostTable>,
    obs: Option<&dyn StageObserver>,
    seq: &AtomicU64,
    sched_cache: Option<&dyn ScheduleCache>,
) -> Result<BackendResult, Diagnostic> {
    validate_platform(platform)?;
    observed_stage(obs, seq, Stage::Backend, move || {
        let FrontendArtifact {
            program,
            bounds,
            htg,
            ..
        } = artifact;
        if htg.top_level.is_empty() {
            return Err(Diagnostic::new(
                Stage::Backend,
                ErrorCode::EmptyHtg,
                format!("artifact for `{entry}` has no top-level tasks"),
            )
            .with_entity(entry));
        }

        // --- Iterative schedule ↔ placement ↔ WCET loop (§ II-E).
        let platform_fp = platform.fingerprint();
        let mut mem = all_shared_map(&program, entry);
        let mut assignment: Option<Vec<argo_adl::CoreId>> = None;
        let mut schedule: Option<Schedule> = None;
        // Hoisted out of the feedback loop: the symbol tables and the
        // task-graph skeleton (names, ids, edges) depend only on the
        // program/HTG, not on the round — each round only re-costs.
        let symbols = program_symbols(&program);
        let mut graph = TaskGraph::skeleton_from_htg(&htg);
        let mut iso_costs: Vec<u64> = Vec::new();
        let mut iterations = 0;
        for round in 0..cfg.feedback_rounds.max(1) {
            let _round_span = argo_trace::span("backend.round");
            iterations = round + 1;
            // Code-level WCET per task, on its (current) core, isolated.
            // The function-WCET table only depends on the core, so it is
            // computed once per distinct core rather than once per task.
            let costs: BTreeMap<argo_htg::TaskId, u64> = match (round, seed) {
                (0, Some(seeded)) => (**seeded).clone(),
                _ => {
                    let mut costs = BTreeMap::new();
                    let mut fw_by_core: BTreeMap<argo_adl::CoreId, _> = BTreeMap::new();
                    for (idx, &tid) in htg.top_level.iter().enumerate() {
                        let core = match &assignment {
                            Some(a) => a[idx],
                            None => argo_adl::CoreId(0),
                        };
                        let ctx =
                            CostCtx::with_symbols(&program, platform, core, 1, &mem, &symbols);
                        if let std::collections::btree_map::Entry::Vacant(e) =
                            fw_by_core.entry(core)
                        {
                            let fw = function_wcets(&ctx, &bounds)
                                .map_err(|e| backend_err(ErrorCode::CodeWcetFailed, e))?;
                            e.insert(fw);
                        }
                        let fw = &fw_by_core[&core];
                        let task = htg.task(tid);
                        let w = stmt_ids_wcet(&ctx, &bounds, fw, entry, &task.stmts)
                            .map_err(|e| backend_err(ErrorCode::CodeWcetFailed, e))?;
                        costs.insert(tid, w.max(1));
                    }
                    costs
                }
            };
            graph.set_costs(&costs);
            iso_costs = graph.cost.clone();

            // Mapping/scheduling stage, routed through the schedule
            // cache when one is bound (third `argo-dse` cache tier):
            // the key covers everything a scheduler observes — the
            // graph (costs + edges), the platform and the scheduler
            // kind — so a hit is byte-identical to a rebuild.
            let ctx = SchedCtx {
                platform,
                comm: CommModel::SignalOnly,
            };
            let mut build = || match cfg.scheduler {
                crate::SchedulerKind::List => ListScheduler::new().schedule(&graph, &ctx),
                crate::SchedulerKind::BranchAndBound => {
                    BranchAndBound::new().schedule(&graph, &ctx)
                }
                crate::SchedulerKind::Anneal => SimulatedAnnealing::new().schedule(&graph, &ctx),
            };
            let sched: Schedule = match sched_cache {
                Some(cache) => {
                    let key = crate::fingerprint::schedule_fingerprint(
                        &graph,
                        platform_fp,
                        cfg.scheduler,
                    );
                    cache.schedule(key, &mut build)
                }
                None => build(),
            };
            let stable = assignment.as_ref() == Some(&sched.assignment);
            assignment = Some(sched.assignment.clone());
            let makespan = sched.makespan();
            schedule = Some(sched);

            // Memory placement for the new mapping (WCET fed back).
            mem = argo_parir::mem_assign::assign(
                &program,
                &htg,
                &graph,
                schedule.as_ref().expect("just set"),
                platform,
            )
            .map_err(|e| backend_err(ErrorCode::MemAssignFailed, e))?;

            if let Some(obs) = obs {
                let spm_resident = mem
                    .iter()
                    .filter(|(_, p)| matches!(p.space, MemSpace::Spm(_)))
                    .count();
                obs.on_feedback_round(&FeedbackSnapshot {
                    seq: seq.fetch_add(1, Ordering::Relaxed),
                    round,
                    assignment: assignment.clone().expect("just set"),
                    makespan,
                    spm_resident,
                    shared_resident: mem.len() - spm_resident,
                    stable,
                });
            }
            if stable {
                break;
            }
        }
        let schedule = schedule.expect("at least one round");

        // In-backend soundness gate (debug builds): the schedule the
        // feedback loop settled on must satisfy its own precedence and
        // exclusivity constraints before we build the parallel model
        // on top of it. Release builds skip this; `argo-verify` is the
        // always-on external check.
        #[cfg(debug_assertions)]
        {
            let gate_ctx = SchedCtx {
                platform,
                comm: CommModel::SignalOnly,
            };
            if let Err(e) = schedule.validate(&graph, &gate_ctx) {
                panic!("backend produced an unsound schedule: {e}");
            }
        }

        // --- Parallel program model (§ II-C).
        let parallel = ParallelProgram::build(program, &htg, graph, schedule, platform)
            .map_err(|e| backend_err(ErrorCode::ParallelModelFailed, e))?;

        // --- System-level WCET (§ II-D).
        let shared_accesses = task_shared_accesses(&htg, &parallel.graph, &parallel.memory_map);
        let system = analyze(&parallel, platform, &iso_costs, &shared_accesses, cfg.mhp);

        // --- Sequential baseline: same tasks, one core, no overlap.
        let seq_ctx = SchedCtx {
            platform,
            comm: CommModel::SignalOnly,
        };
        let seq = evaluate_assignment(
            &parallel.graph,
            &seq_ctx,
            &vec![argo_adl::CoreId(0); parallel.graph.len()],
        );
        let sequential_bound = seq.makespan();

        Ok(BackendResult {
            parallel,
            system,
            sequential_bound,
            iso_costs,
            shared_accesses,
            bounds,
            htg,
            feedback_iterations: iterations,
        })
    })
}

/// The conservative round-0 placement: every array in shared memory.
fn all_shared_map(program: &Program, entry: &str) -> MemoryMap {
    let mut map = MemoryMap::new();
    let Some(f) = program.function(entry) else {
        return map;
    };
    let mut cursor = 0u64;
    for (name, ty) in argo_ir::validate::symbol_table(f) {
        if ty.is_array() {
            map.insert(
                name,
                Placement {
                    space: argo_adl::MemSpace::Shared,
                    base_addr: cursor,
                    size_bytes: ty.size_bytes(),
                },
            );
            cursor += ty.size_bytes();
        }
    }
    map
}
