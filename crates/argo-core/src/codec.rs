//! Binary serialization of pipeline artifacts — the encoding layer of
//! the persistent artifact store (`argo-store`).
//!
//! [`Codec`] is a compact, versionless binary encoding: every value is
//! written as fixed-width little-endian scalars with length-prefixed
//! strings and collections. Versioning, checksums and corruption
//! handling are deliberately **not** part of this layer — the on-disk
//! entry format of `argo-store` wraps every payload in a schema-version
//! header and a checksum, and a payload that fails to [`Codec::decode`]
//! (or decodes to an artifact whose content [`Fingerprint`] disagrees
//! with the recorded one) is treated as a cache miss by the store, so
//! this layer can assume well-formed input and simply report
//! [`DecodeError`] when that assumption fails.
//!
//! Two encoding strategies coexist:
//!
//! * **structural** — most types write their fields directly
//!   ([`Schedule`], [`Htg`], [`CostTable`], [`SystemWcet`], …);
//! * **canonical-text** — [`Program`] is encoded as its printed source
//!   (`argo_ir::printer`) and decoded by re-parsing and renumbering.
//!   The printed text is already the program's canonical identity (the
//!   session's program fingerprint hashes it), the print→parse
//!   round-trip is pinned by property tests, and every serialized
//!   program is a frontend output (renumbered, depth-first pre-order
//!   statement ids), so re-running [`Program::renumber`] after parsing
//!   reproduces the original ids that the loop-bound table and HTG statement
//!   lists refer to. The derived slot [`Resolution`] is a pure function
//!   of the program and is recomputed on decode rather than stored.
//!
//! The artifact content fingerprint (see [`crate::Artifact`]) is the
//! end-to-end integrity check for the non-structural parts: a decoded
//! [`FrontendArtifact`] re-derives its resolution and re-hashes to the
//! stored fingerprint, so any round-trip infidelity surfaces as a
//! counted store corruption, never as a silently wrong artifact.

use crate::artifact::{BackendResult, CostTable, FrontendArtifact};
use crate::diag::{Diagnostic, ErrorCode, Stage};
use crate::fingerprint::Fingerprint;
use argo_adl::{CoreId, MemSpace, MemoryMap, Placement};
use argo_htg::deps::LoopParallelism;
use argo_htg::{DepEdge, Htg, Task, TaskId, TaskKind};
use argo_ir::ast::Program;
use argo_ir::resolve::Resolution;
use argo_ir::StmtId;
use argo_parir::{CorePlan, ParallelProgram, SignalId, Step};
use argo_sched::{Schedule, TaskGraph};
use argo_wcet::system::SystemWcet;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A payload failed to decode (truncated, malformed, or semantically
/// inconsistent — e.g. embedded program text that no longer parses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong, for store corruption counters and logs.
    pub msg: String,
}

impl DecodeError {
    fn new(msg: impl Into<String>) -> DecodeError {
        DecodeError { msg: msg.into() }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.msg)
    }
}

impl std::error::Error for DecodeError {}

/// Append-only byte sink for [`Codec::encode`].
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Finishes encoding and yields the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked cursor over an encoded payload for [`Codec::decode`].
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decoder over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Decoder<'a> {
        Decoder { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::new(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` written by [`Encoder::usize`].
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError::new("usize overflow"))
    }

    /// Reads a collection length and sanity-checks it against the
    /// remaining payload (every element encodes to ≥ 1 byte, so a
    /// length larger than the remainder is corruption, not a huge
    /// collection — rejecting it here keeps garbage bytes from turning
    /// into multi-gigabyte allocations).
    pub fn read_len(&mut self) -> Result<usize, DecodeError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(DecodeError::new(format!(
                "implausible collection length {n} with {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a boolean byte.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::new(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.read_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::new("invalid UTF-8 string"))
    }

    /// Fails unless the payload is fully consumed — trailing bytes mean
    /// the payload was written by a different (newer) encoding.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::new(format!(
                "{} trailing bytes after value",
                self.remaining()
            )))
        }
    }
}

/// Types with a canonical binary encoding for the persistent store.
pub trait Codec: Sized {
    /// Appends this value's encoding to `e`.
    fn encode(&self, e: &mut Encoder);

    /// Decodes one value from the cursor.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Encodes `self` into a fresh byte buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.into_bytes()
    }

    /// Decodes a value from `bytes`, requiring full consumption.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated, malformed or trailing
    /// input.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(bytes);
        let v = Self::decode(&mut d)?;
        d.expect_end()?;
        Ok(v)
    }
}

// --- scalar and generic impls -------------------------------------------

impl Codec for u64 {
    fn encode(&self, e: &mut Encoder) {
        e.u64(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.u64()
    }
}

impl Codec for u32 {
    fn encode(&self, e: &mut Encoder) {
        e.u32(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.u32()
    }
}

impl Codec for usize {
    fn encode(&self, e: &mut Encoder) {
        e.usize(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.usize()
    }
}

impl Codec for bool {
    fn encode(&self, e: &mut Encoder) {
        e.bool(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.bool()
    }
}

impl Codec for f64 {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.to_bits());
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(d.u64()?))
    }
}

impl Codec for String {
    fn encode(&self, e: &mut Encoder) {
        e.str(self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.str()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.len());
        for v in self {
            v.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = d.read_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(d)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, e: &mut Encoder) {
        match self {
            None => e.u8(0),
            Some(v) => {
                e.u8(1);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            b => Err(DecodeError::new(format!("invalid Option tag {b}"))),
        }
    }
}

impl<T: Codec, U: Codec> Codec for Result<T, U> {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Ok(v) => {
                e.u8(0);
                v.encode(e);
            }
            Err(v) => {
                e.u8(1);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(Ok(T::decode(d)?)),
            1 => Ok(Err(U::decode(d)?)),
            b => Err(DecodeError::new(format!("invalid Result tag {b}"))),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
        self.2.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(d)?, B::decode(d)?, C::decode(d)?))
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.len());
        for (k, v) in self {
            k.encode(e);
            v.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = d.read_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(d)?;
            let v = V::decode(d)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Codec + Ord> Codec for BTreeSet<T> {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.len());
        for v in self {
            v.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = d.read_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::decode(d)?);
        }
        Ok(out)
    }
}

// --- id newtypes --------------------------------------------------------

impl Codec for StmtId {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(StmtId(d.u32()?))
    }
}

impl Codec for TaskId {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TaskId(d.usize()?))
    }
}

impl Codec for CoreId {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(CoreId(d.usize()?))
    }
}

impl Codec for SignalId {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SignalId(d.usize()?))
    }
}

impl Codec for Fingerprint {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Fingerprint(d.u64()?))
    }
}

// --- diagnostics --------------------------------------------------------

impl Codec for Stage {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            Stage::Frontend => 0,
            Stage::SeedCosts => 1,
            Stage::Backend => 2,
            Stage::Verify => 3,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(Stage::Frontend),
            1 => Ok(Stage::SeedCosts),
            2 => Ok(Stage::Backend),
            3 => Ok(Stage::Verify),
            b => Err(DecodeError::new(format!("invalid Stage tag {b}"))),
        }
    }
}

impl Codec for ErrorCode {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            ErrorCode::InvalidProgram => 0,
            ErrorCode::UnknownProgram => 1,
            ErrorCode::UnknownEntry => 2,
            ErrorCode::MissingPlatform => 3,
            ErrorCode::InvalidPlatform => 4,
            ErrorCode::TransformFailed => 5,
            ErrorCode::UnboundedLoop => 6,
            ErrorCode::ExtractionFailed => 7,
            ErrorCode::EmptyHtg => 8,
            ErrorCode::CodeWcetFailed => 9,
            ErrorCode::MemAssignFailed => 10,
            ErrorCode::ParallelModelFailed => 11,
            ErrorCode::DataRace => 12,
            ErrorCode::UnsoundSchedule => 13,
            ErrorCode::PlacementOverflow => 14,
            ErrorCode::CommOrdering => 15,
            ErrorCode::UninitRead => 16,
            ErrorCode::DeadStore => 17,
            ErrorCode::UnreachableStmt => 18,
            ErrorCode::InternalError => 19,
            ErrorCode::DeadlineExceeded => 20,
            ErrorCode::LeaderFailed => 21,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => ErrorCode::InvalidProgram,
            1 => ErrorCode::UnknownProgram,
            2 => ErrorCode::UnknownEntry,
            3 => ErrorCode::MissingPlatform,
            4 => ErrorCode::InvalidPlatform,
            5 => ErrorCode::TransformFailed,
            6 => ErrorCode::UnboundedLoop,
            7 => ErrorCode::ExtractionFailed,
            8 => ErrorCode::EmptyHtg,
            9 => ErrorCode::CodeWcetFailed,
            10 => ErrorCode::MemAssignFailed,
            11 => ErrorCode::ParallelModelFailed,
            12 => ErrorCode::DataRace,
            13 => ErrorCode::UnsoundSchedule,
            14 => ErrorCode::PlacementOverflow,
            15 => ErrorCode::CommOrdering,
            16 => ErrorCode::UninitRead,
            17 => ErrorCode::DeadStore,
            18 => ErrorCode::UnreachableStmt,
            19 => ErrorCode::InternalError,
            20 => ErrorCode::DeadlineExceeded,
            21 => ErrorCode::LeaderFailed,
            b => return Err(DecodeError::new(format!("invalid ErrorCode tag {b}"))),
        })
    }
}

impl Codec for Diagnostic {
    fn encode(&self, e: &mut Encoder) {
        self.stage.encode(e);
        self.code.encode(e);
        self.entity.encode(e);
        self.message.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Diagnostic {
            stage: Stage::decode(d)?,
            code: ErrorCode::decode(d)?,
            entity: Option::decode(d)?,
            message: String::decode(d)?,
        })
    }
}

// --- IR: the program travels as canonical printed text -----------------

impl Codec for Program {
    fn encode(&self, e: &mut Encoder) {
        e.str(&argo_ir::printer::print_program(self));
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let src = d.str()?;
        let mut program = argo_ir::parse::parse_program(&src)
            .map_err(|e| DecodeError::new(format!("embedded program does not parse: {e}")))?;
        // Every serialized program is a frontend output, i.e. already
        // renumbered depth-first pre-order; re-running the same pass
        // after parsing reproduces the original statement ids that
        // sibling fields (loop bounds, HTG statement lists) refer to.
        program.renumber();
        Ok(program)
    }
}

// --- HTG ----------------------------------------------------------------

impl Codec for LoopParallelism {
    fn encode(&self, e: &mut Encoder) {
        match self {
            LoopParallelism::Doall => e.u8(0),
            LoopParallelism::Reduction(vars) => {
                e.u8(1);
                vars.encode(e);
            }
            LoopParallelism::Sequential => e.u8(2),
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(LoopParallelism::Doall),
            1 => Ok(LoopParallelism::Reduction(Vec::decode(d)?)),
            2 => Ok(LoopParallelism::Sequential),
            b => Err(DecodeError::new(format!("invalid LoopParallelism tag {b}"))),
        }
    }
}

impl Codec for TaskKind {
    fn encode(&self, e: &mut Encoder) {
        match self {
            TaskKind::Simple => e.u8(0),
            TaskKind::LoopNode { parallelism } => {
                e.u8(1);
                parallelism.encode(e);
            }
            TaskKind::CondNode => e.u8(2),
            TaskKind::CallNode { callee } => {
                e.u8(3);
                callee.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(TaskKind::Simple),
            1 => Ok(TaskKind::LoopNode {
                parallelism: LoopParallelism::decode(d)?,
            }),
            2 => Ok(TaskKind::CondNode),
            3 => Ok(TaskKind::CallNode {
                callee: String::decode(d)?,
            }),
            b => Err(DecodeError::new(format!("invalid TaskKind tag {b}"))),
        }
    }
}

impl Codec for Task {
    fn encode(&self, e: &mut Encoder) {
        self.id.encode(e);
        self.name.encode(e);
        self.kind.encode(e);
        self.stmts.encode(e);
        self.reads.encode(e);
        self.live_reads.encode(e);
        self.writes.encode(e);
        self.children.encode(e);
        self.parent.encode(e);
        self.access_counts.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Task {
            id: TaskId::decode(d)?,
            name: String::decode(d)?,
            kind: TaskKind::decode(d)?,
            stmts: Vec::decode(d)?,
            reads: BTreeSet::decode(d)?,
            live_reads: BTreeSet::decode(d)?,
            writes: BTreeSet::decode(d)?,
            children: Vec::decode(d)?,
            parent: Option::decode(d)?,
            access_counts: BTreeMap::decode(d)?,
        })
    }
}

impl Codec for DepEdge {
    fn encode(&self, e: &mut Encoder) {
        self.from.encode(e);
        self.to.encode(e);
        self.vars.encode(e);
        self.conflicts.encode(e);
        self.bytes.encode(e);
        self.ordering_only.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(DepEdge {
            from: TaskId::decode(d)?,
            to: TaskId::decode(d)?,
            vars: BTreeSet::decode(d)?,
            conflicts: BTreeSet::decode(d)?,
            bytes: u64::decode(d)?,
            ordering_only: bool::decode(d)?,
        })
    }
}

impl Codec for Htg {
    fn encode(&self, e: &mut Encoder) {
        self.tasks.encode(e);
        self.edges.encode(e);
        self.top_level.encode(e);
        self.function.encode(e);
        self.privatizable.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Htg {
            tasks: Vec::decode(d)?,
            edges: Vec::decode(d)?,
            top_level: Vec::decode(d)?,
            function: String::decode(d)?,
            privatizable: BTreeSet::decode(d)?,
        })
    }
}

// --- scheduling / memory / parallel model ------------------------------

impl Codec for TaskGraph {
    fn encode(&self, e: &mut Encoder) {
        self.cost.encode(e);
        self.edges.encode(e);
        self.names.encode(e);
        self.htg_ids.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TaskGraph {
            cost: Vec::decode(d)?,
            edges: Vec::decode(d)?,
            names: Vec::decode(d)?,
            htg_ids: Vec::decode(d)?,
        })
    }
}

impl Codec for Schedule {
    fn encode(&self, e: &mut Encoder) {
        self.assignment.encode(e);
        self.start.encode(e);
        self.finish.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Schedule {
            assignment: Vec::decode(d)?,
            start: Vec::decode(d)?,
            finish: Vec::decode(d)?,
        })
    }
}

impl Codec for MemSpace {
    fn encode(&self, e: &mut Encoder) {
        match self {
            MemSpace::Local => e.u8(0),
            MemSpace::Spm(core) => {
                e.u8(1);
                core.encode(e);
            }
            MemSpace::Shared => e.u8(2),
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(MemSpace::Local),
            1 => Ok(MemSpace::Spm(CoreId::decode(d)?)),
            2 => Ok(MemSpace::Shared),
            b => Err(DecodeError::new(format!("invalid MemSpace tag {b}"))),
        }
    }
}

impl Codec for Placement {
    fn encode(&self, e: &mut Encoder) {
        self.space.encode(e);
        self.base_addr.encode(e);
        self.size_bytes.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Placement {
            space: MemSpace::decode(d)?,
            base_addr: u64::decode(d)?,
            size_bytes: u64::decode(d)?,
        })
    }
}

impl Codec for MemoryMap {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.len());
        for (var, placement) in self.iter() {
            var.encode(e);
            placement.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = d.read_len()?;
        let mut map = MemoryMap::new();
        for _ in 0..n {
            let var = String::decode(d)?;
            let placement = Placement::decode(d)?;
            map.insert(var, placement);
        }
        Ok(map)
    }
}

impl Codec for Step {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Step::Exec { task } => {
                e.u8(0);
                task.encode(e);
            }
            Step::Wait { signal, producer } => {
                e.u8(1);
                signal.encode(e);
                producer.encode(e);
            }
            Step::Signal { signal, consumer } => {
                e.u8(2);
                signal.encode(e);
                consumer.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(Step::Exec {
                task: usize::decode(d)?,
            }),
            1 => Ok(Step::Wait {
                signal: SignalId::decode(d)?,
                producer: usize::decode(d)?,
            }),
            2 => Ok(Step::Signal {
                signal: SignalId::decode(d)?,
                consumer: usize::decode(d)?,
            }),
            b => Err(DecodeError::new(format!("invalid Step tag {b}"))),
        }
    }
}

impl Codec for CorePlan {
    fn encode(&self, e: &mut Encoder) {
        self.core.encode(e);
        self.steps.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(CorePlan {
            core: CoreId::decode(d)?,
            steps: Vec::decode(d)?,
        })
    }
}

impl Codec for ParallelProgram {
    fn encode(&self, e: &mut Encoder) {
        self.program.encode(e);
        self.entry.encode(e);
        self.graph.encode(e);
        self.schedule.encode(e);
        self.plans.encode(e);
        self.memory_map.encode(e);
        self.privatized.encode(e);
        self.task_stmts.encode(e);
        self.signal_count.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ParallelProgram {
            program: Program::decode(d)?,
            entry: String::decode(d)?,
            graph: TaskGraph::decode(d)?,
            schedule: Schedule::decode(d)?,
            plans: Vec::decode(d)?,
            memory_map: MemoryMap::decode(d)?,
            privatized: BTreeSet::decode(d)?,
            task_stmts: Vec::decode(d)?,
            signal_count: usize::decode(d)?,
        })
    }
}

impl Codec for SystemWcet {
    fn encode(&self, e: &mut Encoder) {
        self.bound.encode(e);
        self.iso_wcet.encode(e);
        self.task_wcet.encode(e);
        self.contenders.encode(e);
        self.start.encode(e);
        self.finish.encode(e);
        self.iterations.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SystemWcet {
            bound: u64::decode(d)?,
            iso_wcet: Vec::decode(d)?,
            task_wcet: Vec::decode(d)?,
            contenders: Vec::decode(d)?,
            start: Vec::decode(d)?,
            finish: Vec::decode(d)?,
            iterations: u32::decode(d)?,
        })
    }
}

// --- pipeline artifacts -------------------------------------------------

impl Codec for CostTable {
    fn encode(&self, e: &mut Encoder) {
        let map: &BTreeMap<TaskId, u64> = self;
        map.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(CostTable::from(BTreeMap::decode(d)?))
    }
}

impl Codec for FrontendArtifact {
    fn encode(&self, e: &mut Encoder) {
        self.program.encode(e);
        self.bounds.encode(e);
        self.htg.encode(e);
        // `resolution` is not written: it is a pure function of the
        // program, recomputed on decode (and cross-checked by the
        // artifact content fingerprint the store records).
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let program = Program::decode(d)?;
        let bounds = BTreeMap::decode(d)?;
        let htg = Htg::decode(d)?;
        let resolution = Resolution::of(&program);
        Ok(FrontendArtifact {
            program,
            resolution,
            bounds,
            htg,
        })
    }
}

impl Codec for BackendResult {
    fn encode(&self, e: &mut Encoder) {
        self.parallel.encode(e);
        self.system.encode(e);
        self.sequential_bound.encode(e);
        self.iso_costs.encode(e);
        self.shared_accesses.encode(e);
        self.bounds.encode(e);
        self.htg.encode(e);
        self.feedback_iterations.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(BackendResult {
            parallel: ParallelProgram::decode(d)?,
            system: SystemWcet::decode(d)?,
            sequential_bound: u64::decode(d)?,
            iso_costs: Vec::decode(d)?,
            shared_accesses: Vec::decode(d)?,
            bounds: BTreeMap::decode(d)?,
            htg: Htg::decode(d)?,
            feedback_iterations: u32::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Artifact;
    use crate::{ToolchainConfig, Toolflow};
    use argo_adl::Platform;

    const SRC: &str = "real main(real a[16], real b[16]) {\n\
                       real s; int i;\n\
                       s = 0.0;\n\
                       for (i = 0; i < 16; i = i + 1) { b[i] = a[i] * 2.0; }\n\
                       for (i = 0; i < 16; i = i + 1) { s = s + b[i]; }\n\
                       return s;\n\
                       }";

    fn session_artifacts() -> (FrontendArtifact, CostTable, BackendResult) {
        let program = argo_ir::parse::parse_program(SRC).unwrap();
        let platform = Platform::xentium_manycore(2);
        let flow = Toolflow::new(program, "main")
            .platform(&platform)
            .config(ToolchainConfig::default());
        let artifact = flow.run_frontend().unwrap();
        let costs = flow.run_seed_costs(&artifact).unwrap();
        let result = flow.run_backend(artifact.clone(), Some(&costs)).unwrap();
        (artifact, costs, result)
    }

    #[test]
    fn scalars_and_collections_round_trip() {
        let v: Vec<(usize, usize, u64)> = vec![(1, 2, 3), (4, 5, 6)];
        assert_eq!(
            Vec::<(usize, usize, u64)>::from_bytes(&v.to_bytes()).unwrap(),
            v
        );
        let m: BTreeMap<String, u64> = [("a".to_string(), 1), ("b".to_string(), 2)].into();
        assert_eq!(
            BTreeMap::<String, u64>::from_bytes(&m.to_bytes()).unwrap(),
            m
        );
        let o: Option<String> = Some("hi".into());
        assert_eq!(Option::<String>::from_bytes(&o.to_bytes()).unwrap(), o);
        let r: Result<u64, String> = Err("nope".into());
        assert_eq!(Result::<u64, String>::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn frontend_artifact_round_trips_with_equal_fingerprint() {
        let (artifact, _, _) = session_artifacts();
        let bytes = artifact.to_bytes();
        let back = FrontendArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(back.fingerprint(), artifact.fingerprint());
        assert_eq!(back.program, artifact.program);
        assert_eq!(back.bounds, artifact.bounds);
        assert_eq!(back.htg, artifact.htg);
    }

    #[test]
    fn cost_table_round_trips() {
        let (_, costs, _) = session_artifacts();
        let back = CostTable::from_bytes(&costs.to_bytes()).unwrap();
        assert_eq!(back, costs);
        assert_eq!(back.fingerprint(), costs.fingerprint());
    }

    #[test]
    fn backend_result_round_trips_with_equal_fingerprint() {
        let (_, _, result) = session_artifacts();
        let bytes = result.to_bytes();
        let back = BackendResult::from_bytes(&bytes).unwrap();
        assert_eq!(back.fingerprint(), result.fingerprint());
        assert_eq!(back.parallel.schedule, result.parallel.schedule);
        assert_eq!(back.parallel.plans, result.parallel.plans);
        assert_eq!(back.parallel.memory_map, result.parallel.memory_map);
        assert_eq!(back.system, result.system);
        assert_eq!(back.htg, result.htg);
        assert_eq!(back.report(), result.report(), "reports byte-identical");
    }

    #[test]
    fn diagnostics_round_trip() {
        let d = Diagnostic::new(Stage::Backend, ErrorCode::MemAssignFailed, "boom")
            .with_entity("core3");
        assert_eq!(Diagnostic::from_bytes(&d.to_bytes()).unwrap(), d);
        let plain = Diagnostic::new(Stage::Verify, ErrorCode::DataRace, "race");
        assert_eq!(Diagnostic::from_bytes(&plain.to_bytes()).unwrap(), plain);
    }

    #[test]
    fn truncation_and_garbage_fail_loudly() {
        let (artifact, _, _) = session_artifacts();
        let bytes = artifact.to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                FrontendArtifact::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        let garbage: Vec<u8> = (0..256).map(|i| (i * 31 % 251) as u8).collect();
        assert!(FrontendArtifact::from_bytes(&garbage).is_err());
        assert!(Schedule::from_bytes(&garbage).is_err());
        // Trailing bytes are rejected too (newer-writer detection).
        let mut padded = bytes;
        padded.push(0);
        assert!(FrontendArtifact::from_bytes(&padded).is_err());
    }

    #[test]
    fn implausible_lengths_do_not_allocate() {
        // A huge length prefix with no payload behind it must error out
        // instead of attempting a multi-gigabyte allocation.
        let mut e = Encoder::new();
        e.u64(u64::MAX / 2);
        assert!(Vec::<u64>::from_bytes(&e.into_bytes()).is_err());
    }
}
