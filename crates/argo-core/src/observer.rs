//! Stage observability: typed hooks into a running [`Toolflow`] session.
//!
//! The paper's toolflow (Fig. 1) is an *iterative* pipeline — WCET
//! information feeds back into scheduling and placement — but the legacy
//! driver gave callers no way to watch it: DSE sweeps and experiment
//! binaries hand-rolled wall-clock timing around opaque `compile()`
//! calls. A [`StageObserver`] attached via
//! [`Toolflow::observer`](crate::Toolflow::observer) receives:
//!
//! * paired `on_stage_start` / `on_stage_finish` events for every
//!   pipeline [`Stage`] the session runs, the finish event carrying a
//!   [`StageSummary`] with the produced artifact's canonical
//!   [`Fingerprint`], a human-readable detail line, and the elapsed
//!   wall time;
//! * one [`FeedbackSnapshot`] per § II-E feedback round inside the
//!   backend, exposing the round's schedule (assignment + makespan) and
//!   memory placement so convergence can be traced.
//!
//! Observer methods take `&self` so one observer can be shared across
//! threads (e.g. one per DSE sweep); stateful observers use interior
//! mutability, as [`CollectingObserver`] does.
//!
//! [`Toolflow`]: crate::Toolflow

use crate::diag::Stage;
use crate::fingerprint::Fingerprint;
use argo_adl::CoreId;
use std::cell::RefCell;
use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

/// What a finished stage produced: fingerprint, description, timing.
#[derive(Debug, Clone)]
pub struct StageSummary {
    /// Per-session monotonically increasing event sequence number (see
    /// [`StageObserver`]).
    pub seq: u64,
    /// The stage that finished.
    pub stage: Stage,
    /// Canonical fingerprint of the artifact the stage produced.
    pub fingerprint: Fingerprint,
    /// Short human-readable description (task counts, bounds, …).
    pub detail: String,
    /// Wall-clock time the stage took.
    pub elapsed: Duration,
}

/// One § II-E feedback round inside the backend: the round's schedule
/// and memory placement, for convergence tracing.
#[derive(Debug, Clone)]
pub struct FeedbackSnapshot {
    /// Per-session monotonically increasing event sequence number (see
    /// [`StageObserver`]).
    pub seq: u64,
    /// Round index (0-based).
    pub round: u32,
    /// Task → core mapping the scheduler chose this round.
    pub assignment: Vec<CoreId>,
    /// Interference-free makespan of this round's schedule.
    pub makespan: u64,
    /// Arrays the placement put in a scratchpad this round.
    pub spm_resident: usize,
    /// Arrays left in shared memory this round.
    pub shared_resident: usize,
    /// `true` when the assignment matched the previous round's (the
    /// feedback loop stops after a stable round).
    pub stable: bool,
}

/// Hooks into a running toolflow session. All methods have empty
/// defaults; implement only what you need.
///
/// Every started stage is closed by exactly one terminal event:
/// `on_stage_finish` on success, `on_stage_error` on failure — so
/// event streams stay well-nested even across failing points (a DSE
/// sweep routinely mixes both on one shared observer).
///
/// Every event carries a `seq` number drawn from one per-session
/// counter ([`Toolflow`](crate::Toolflow) allocates it; the legacy
/// free functions use a fresh counter per call). Within a session,
/// `seq` is strictly increasing in emission order across *all* event
/// kinds — stage starts, finishes, errors and feedback rounds share
/// the counter — so consumers that receive events over a reordering
/// transport (e.g. the `argo-serve` progress stream) can restore
/// emission order and drop duplicates.
pub trait StageObserver {
    /// Cooperative cancellation checkpoint, polled by the session
    /// driver *before* each stage starts (before `on_stage_start`).
    /// Returning `Err` aborts the pipeline with that diagnostic and no
    /// start/terminal events are emitted for the aborted stage —
    /// streams stay well-nested. The default never cancels; observers
    /// that carry a [`CancelToken`](crate::CancelToken) delegate to
    /// [`CancelToken::check`](crate::CancelToken::check), and wrapper
    /// observers must forward the call so cancellation survives
    /// composition.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic (conventionally
    /// [`ErrorCode::DeadlineExceeded`](crate::ErrorCode::DeadlineExceeded))
    /// when the session should stop before running `stage`.
    fn checkpoint(&self, stage: Stage) -> Result<(), crate::Diagnostic> {
        let _ = stage;
        Ok(())
    }

    /// A pipeline stage is about to run.
    fn on_stage_start(&self, stage: Stage, seq: u64) {
        let _ = (stage, seq);
    }

    /// A pipeline stage finished, producing the summarized artifact.
    fn on_stage_finish(&self, summary: &StageSummary) {
        let _ = summary;
    }

    /// A pipeline stage failed with the given diagnostic (the terminal
    /// event for that stage — no `on_stage_finish` follows).
    fn on_stage_error(&self, stage: Stage, seq: u64, diagnostic: &crate::Diagnostic) {
        let _ = (stage, seq, diagnostic);
    }

    /// One backend feedback round completed.
    fn on_feedback_round(&self, snapshot: &FeedbackSnapshot) {
        let _ = snapshot;
    }
}

/// The do-nothing observer (default for sessions without one).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl StageObserver for NullObserver {}

/// Stable span name for a pipeline stage: `stage.<label>`. The session
/// driver's tracer spans, the [`TracingObserver`] adapter and
/// `argo-dse`'s `TimingObserver` aggregator all key stage time under
/// these names, so every view of "where did the stage time go" agrees.
pub fn stage_span_name(stage: Stage) -> &'static str {
    match stage {
        Stage::Frontend => "stage.frontend",
        Stage::SeedCosts => "stage.seed-costs",
        Stage::Backend => "stage.backend",
        Stage::Verify => "stage.verify",
    }
}

thread_local! {
    /// Open stage spans of [`TracingObserver`] adapters on this thread.
    /// Stage events of one session never interleave within a thread
    /// (stages run sequentially), so a per-thread stack suffices even
    /// when one adapter is shared by many worker threads.
    static OPEN_STAGE_SPANS: RefCell<Vec<(Stage, argo_trace::Span<'static>)>> =
        const { RefCell::new(Vec::new()) };
}

/// Adapter turning a [`StageObserver`] event stream into spans on the
/// global `argo-trace` tracer: `on_stage_start` opens a
/// [`stage_span_name`] span, the matching terminal event closes it,
/// and every event is forwarded to the wrapped observer — existing
/// seq/progress streaming is preserved untouched.
///
/// Sessions driven by [`crate::Toolflow`] already record stage spans in
/// the driver itself; this adapter is for event streams *without* a
/// local driver — e.g. replaying a recorded [`CollectingObserver`]
/// stream, or re-tracing progress frames on an `argo-serve` client.
/// Wrapping an observer that a local session also drives would record
/// each stage twice.
#[derive(Debug, Default)]
pub struct TracingObserver<O: StageObserver> {
    inner: O,
}

impl<O: StageObserver> TracingObserver<O> {
    /// Wraps `inner`, forwarding every event to it.
    pub fn new(inner: O) -> TracingObserver<O> {
        TracingObserver { inner }
    }

    /// The wrapped observer.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: StageObserver> TracingObserver<O> {
    fn close_span(stage: Stage) {
        OPEN_STAGE_SPANS.with(|open| {
            let mut open = open.borrow_mut();
            if let Some(pos) = open.iter().rposition(|(s, _)| *s == stage) {
                open.remove(pos);
            }
        });
    }
}

impl<O: StageObserver> StageObserver for TracingObserver<O> {
    fn checkpoint(&self, stage: Stage) -> Result<(), crate::Diagnostic> {
        self.inner.checkpoint(stage)
    }

    fn on_stage_start(&self, stage: Stage, seq: u64) {
        OPEN_STAGE_SPANS.with(|open| {
            open.borrow_mut()
                .push((stage, argo_trace::span(stage_span_name(stage))));
        });
        self.inner.on_stage_start(stage, seq);
    }

    fn on_stage_finish(&self, summary: &StageSummary) {
        Self::close_span(summary.stage);
        self.inner.on_stage_finish(summary);
    }

    fn on_stage_error(&self, stage: Stage, seq: u64, diagnostic: &crate::Diagnostic) {
        Self::close_span(stage);
        self.inner.on_stage_error(stage, seq, diagnostic);
    }

    fn on_feedback_round(&self, snapshot: &FeedbackSnapshot) {
        self.inner.on_feedback_round(snapshot);
    }
}

/// One recorded observer callback, in arrival order.
#[derive(Debug, Clone)]
pub enum StageEvent {
    /// `on_stage_start` (stage, seq).
    Started(Stage, u64),
    /// `on_stage_finish`.
    Finished(StageSummary),
    /// `on_stage_error` (stage, seq, diagnostic).
    Errored(Stage, u64, crate::Diagnostic),
    /// `on_feedback_round`.
    Feedback(FeedbackSnapshot),
}

impl StageEvent {
    /// The event's per-session sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            StageEvent::Started(_, seq) => *seq,
            StageEvent::Finished(s) => s.seq,
            StageEvent::Errored(_, seq, _) => *seq,
            StageEvent::Feedback(s) => s.seq,
        }
    }
}

/// An observer that records every event, for tests, reports and
/// post-hoc timing. Thread-safe: events from concurrent sessions
/// interleave but each session's own events stay ordered.
#[derive(Debug, Default)]
pub struct CollectingObserver {
    events: Mutex<Vec<StageEvent>>,
}

impl CollectingObserver {
    /// Empty collector.
    pub fn new() -> CollectingObserver {
        CollectingObserver::default()
    }

    /// Snapshot of all recorded events in arrival order.
    pub fn events(&self) -> Vec<StageEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Number of `(start, finish)` pairs recorded for `stage`.
    pub fn finished_count(&self, stage: Stage) -> usize {
        self.events()
            .iter()
            .filter(|e| matches!(e, StageEvent::Finished(s) if s.stage == stage))
            .count()
    }

    /// Recorded feedback snapshots, in order.
    pub fn feedback_rounds(&self) -> Vec<FeedbackSnapshot> {
        self.events()
            .iter()
            .filter_map(|e| match e {
                StageEvent::Feedback(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    /// Recorded stage errors, in order.
    pub fn errors(&self) -> Vec<(Stage, crate::Diagnostic)> {
        self.events()
            .iter()
            .filter_map(|e| match e {
                StageEvent::Errored(s, _, d) => Some((*s, d.clone())),
                _ => None,
            })
            .collect()
    }

    /// Sequence numbers of all recorded events, in arrival order.
    pub fn seqs(&self) -> Vec<u64> {
        self.events().iter().map(StageEvent::seq).collect()
    }

    /// `true` when stage events are well-nested: every `Started(s)` is
    /// closed by a matching terminal event (`Finished(s)` or
    /// `Errored(s, _)`) before the next stage starts, feedback
    /// snapshots only arrive inside the backend stage, and no stage
    /// terminates without having started.
    pub fn well_nested(&self) -> bool {
        let mut open: Option<Stage> = None;
        for ev in self.events() {
            match ev {
                StageEvent::Started(s, _) => {
                    if open.is_some() {
                        return false;
                    }
                    open = Some(s);
                }
                StageEvent::Finished(summary) => {
                    if open != Some(summary.stage) {
                        return false;
                    }
                    open = None;
                }
                StageEvent::Errored(s, _, _) => {
                    if open != Some(s) {
                        return false;
                    }
                    open = None;
                }
                StageEvent::Feedback(_) => {
                    if open != Some(Stage::Backend) {
                        return false;
                    }
                }
            }
        }
        open.is_none()
    }

    /// Total wall time of all finished stages.
    pub fn total_elapsed(&self) -> Duration {
        self.events()
            .iter()
            .filter_map(|e| match e {
                StageEvent::Finished(s) => Some(s.elapsed),
                _ => None,
            })
            .sum()
    }
}

impl StageObserver for CollectingObserver {
    fn on_stage_start(&self, stage: Stage, seq: u64) {
        self.events
            .lock()
            .unwrap()
            .push(StageEvent::Started(stage, seq));
    }

    fn on_stage_finish(&self, summary: &StageSummary) {
        self.events
            .lock()
            .unwrap()
            .push(StageEvent::Finished(summary.clone()));
    }

    fn on_stage_error(&self, stage: Stage, seq: u64, diagnostic: &crate::Diagnostic) {
        self.events
            .lock()
            .unwrap()
            .push(StageEvent::Errored(stage, seq, diagnostic.clone()));
    }

    fn on_feedback_round(&self, snapshot: &FeedbackSnapshot) {
        self.events
            .lock()
            .unwrap()
            .push(StageEvent::Feedback(snapshot.clone()));
    }
}

/// An observer that renders events as indented trace lines to any
/// writer — `TraceObserver::stderr()` gives progress output for CLI
/// binaries and examples without touching their pinned stdout tables.
pub struct TraceObserver<W: Write> {
    out: Mutex<W>,
}

impl TraceObserver<std::io::Stderr> {
    /// Trace to standard error.
    pub fn stderr() -> TraceObserver<std::io::Stderr> {
        TraceObserver {
            out: Mutex::new(std::io::stderr()),
        }
    }
}

impl<W: Write> TraceObserver<W> {
    /// Trace to an arbitrary writer.
    pub fn new(out: W) -> TraceObserver<W> {
        TraceObserver {
            out: Mutex::new(out),
        }
    }

    /// Consumes the observer, returning the writer.
    pub fn into_inner(self) -> W {
        self.out.into_inner().unwrap()
    }
}

impl<W: Write> StageObserver for TraceObserver<W> {
    fn on_stage_start(&self, stage: Stage, _seq: u64) {
        let mut out = self.out.lock().unwrap();
        let _ = writeln!(out, "[toolflow] {stage} ...");
    }

    fn on_stage_finish(&self, summary: &StageSummary) {
        let mut out = self.out.lock().unwrap();
        let _ = writeln!(
            out,
            "[toolflow] {} done in {:.1?} — {} (fp {})",
            summary.stage, summary.elapsed, summary.detail, summary.fingerprint
        );
    }

    fn on_stage_error(&self, stage: Stage, _seq: u64, diagnostic: &crate::Diagnostic) {
        let mut out = self.out.lock().unwrap();
        let _ = writeln!(out, "[toolflow] {stage} FAILED — {diagnostic}");
    }

    fn on_feedback_round(&self, snapshot: &FeedbackSnapshot) {
        let mut out = self.out.lock().unwrap();
        let _ = writeln!(
            out,
            "[toolflow]   feedback round {}: makespan {}, {} spm / {} shared arrays{}",
            snapshot.round,
            snapshot.makespan,
            snapshot.spm_resident,
            snapshot.shared_resident,
            if snapshot.stable { " (stable)" } else { "" }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(stage: Stage, seq: u64) -> StageSummary {
        StageSummary {
            seq,
            stage,
            fingerprint: Fingerprint(7),
            detail: "x".into(),
            elapsed: Duration::from_millis(1),
        }
    }

    #[test]
    fn well_nested_accepts_ordered_pairs() {
        let obs = CollectingObserver::new();
        obs.on_stage_start(Stage::Frontend, 0);
        obs.on_stage_finish(&summary(Stage::Frontend, 1));
        obs.on_stage_start(Stage::Backend, 2);
        obs.on_feedback_round(&FeedbackSnapshot {
            seq: 3,
            round: 0,
            assignment: vec![CoreId(0)],
            makespan: 5,
            spm_resident: 0,
            shared_resident: 1,
            stable: true,
        });
        obs.on_stage_finish(&summary(Stage::Backend, 4));
        assert!(obs.well_nested());
        assert_eq!(obs.finished_count(Stage::Frontend), 1);
        assert_eq!(obs.feedback_rounds().len(), 1);
        assert_eq!(obs.seqs(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn well_nested_rejects_unclosed_and_crossed_stages() {
        let open = CollectingObserver::new();
        open.on_stage_start(Stage::Frontend, 0);
        assert!(!open.well_nested());

        let crossed = CollectingObserver::new();
        crossed.on_stage_start(Stage::Frontend, 0);
        crossed.on_stage_finish(&summary(Stage::Backend, 1));
        assert!(!crossed.well_nested());

        let stray = CollectingObserver::new();
        stray.on_feedback_round(&FeedbackSnapshot {
            seq: 0,
            round: 0,
            assignment: vec![],
            makespan: 0,
            spm_resident: 0,
            shared_resident: 0,
            stable: false,
        });
        assert!(!stray.well_nested());
    }

    #[test]
    fn trace_observer_writes_lines() {
        let obs = TraceObserver::new(Vec::<u8>::new());
        obs.on_stage_start(Stage::Frontend, 0);
        obs.on_stage_finish(&summary(Stage::Frontend, 1));
        let text = String::from_utf8(obs.into_inner()).unwrap();
        assert!(text.contains("frontend ..."), "{text}");
        assert!(text.contains("frontend done"), "{text}");
    }

    #[test]
    fn tracing_observer_turns_events_into_spans_and_forwards() {
        argo_trace::enable_spans();
        let adapter = TracingObserver::new(CollectingObserver::new());
        adapter.on_stage_start(Stage::Frontend, 0);
        adapter.on_stage_finish(&summary(Stage::Frontend, 1));
        adapter.on_stage_start(Stage::Backend, 2);
        adapter.on_stage_error(
            Stage::Backend,
            3,
            &crate::Diagnostic::new(Stage::Backend, crate::ErrorCode::EmptyHtg, "x"),
        );
        // Forwarding preserved the stream for the wrapped observer.
        assert!(adapter.inner().well_nested());
        assert_eq!(adapter.inner().events().len(), 4);
        // Both stages (the erroring one included) closed their spans.
        let records = argo_trace::global().snapshot();
        for name in ["stage.frontend", "stage.backend"] {
            assert!(
                records.iter().any(|r| r.name == name),
                "missing span {name}"
            );
        }
        OPEN_STAGE_SPANS.with(|open| assert!(open.borrow().is_empty()));
    }
}
