//! # argo-core — the ARGO tool-chain driver (paper Fig. 1)
//!
//! Chains every stage of the ARGO design workflow:
//!
//! ```text
//! model/mini-C ──► transforms ──► HTG extraction ──► scheduling/mapping
//!      ▲                                                    │
//!      │                                                    ▼
//!      └─── iterative optimisation ◄── system-level ◄── parallel model
//!                (§ II-E feedback)       WCET (§ II-D)     (§ II-C)
//! ```
//!
//! The phase-ordering problem the paper calls out — task WCETs depend on
//! memory placement, placement depends on the schedule, the schedule
//! depends on task WCETs — is resolved exactly as § II-E prescribes:
//! "WCET information is fed back to the previous compilation phases to
//! enable an iterative optimization of the parallelization process".
//! The backend starts from a conservative all-shared placement, then
//! re-costs, re-schedules and re-places until the assignment stabilises
//! (bounded by [`ToolchainConfig::feedback_rounds`]).
//!
//! ## The `Toolflow` session API
//!
//! The driver is a typed, observable, fingerprint-native session:
//! [`Toolflow`] binds program, entry, platform, config and (optionally)
//! a [`StageObserver`], then runs the pipeline whole or stage by stage.
//! Each stage yields an owned [`Artifact`]:
//! [`FrontendArtifact`] → [`CostTable`] → [`BackendResult`], every one
//! carrying a canonical content [`Fingerprint`]; [`Platform`] and
//! [`ToolchainConfig`] are [`Fingerprintable`] too, so caches (see
//! `argo-dse`) key on API-owned hashes instead of `Debug` formatting.
//! Failures are structured [`Diagnostic`]s (a [`Stage`], an
//! [`ErrorCode`], the offending entity, a rendered message).
//!
//! ## Migration guide (free functions → sessions)
//!
//! The legacy free functions remain as thin wrappers over a default
//! session, so downstream code has a one-line migration:
//!
//! | legacy call | session call |
//! |-------------|--------------|
//! | `compile(p, "main", &plat, &cfg)` | `Toolflow::new(p, "main").platform(&plat).config(cfg).run()` |
//! | `frontend(p, "main", cores, &cfg)` | `Toolflow::new(p, "main").platform(&plat).config(cfg).run_frontend()` |
//! | `seed_costs(&art, "main", &plat)` | `flow.run_seed_costs(&art)` |
//! | `backend(art, "main", &plat, &cfg, seed)` | `flow.run_backend(art, seed)` |
//! | `ToolchainError { stage: "entry", .. }` | `Diagnostic { code: ErrorCode::UnknownEntry, .. }` |
//! | `format!("{:?}", platform)` cache keys | `platform.fingerprint()` / `flow.frontend_fingerprint()` |
//!
//! What sessions add over the free functions: stage observers (paired
//! start/finish events, per-feedback-round schedule/placement
//! snapshots) and canonical per-stage input fingerprints
//! ([`Toolflow::frontend_fingerprint`],
//! [`Toolflow::seed_cost_fingerprint`]).
//!
//! ### Error codes
//!
//! [`Diagnostic::code`] replaces the legacy stringly-typed stage names:
//!
//! | legacy `stage` string | [`ErrorCode`] | [`Stage`] |
//! |-----------------------|---------------|-----------|
//! | `"validate"`, `"validate-post-transform"` | [`ErrorCode::InvalidProgram`] | frontend |
//! | `"entry"` | [`ErrorCode::UnknownEntry`] | frontend |
//! | `"transform"`, `"chunk"` | [`ErrorCode::TransformFailed`] | frontend |
//! | `"loop-bounds"` | [`ErrorCode::UnboundedLoop`] | frontend |
//! | `"extract"` | [`ErrorCode::ExtractionFailed`] | frontend |
//! | *(new)* | [`ErrorCode::EmptyHtg`] | frontend/backend |
//! | `"platform"` | [`ErrorCode::InvalidPlatform`] | backend |
//! | *(new)* | [`ErrorCode::MissingPlatform`] | backend |
//! | `"code-wcet"`, `"task-wcet"` | [`ErrorCode::CodeWcetFailed`] | seed-costs/backend |
//! | *(new — name-resolving drivers)* | [`ErrorCode::UnknownProgram`] | frontend |
//! | `"mem-assign"` | [`ErrorCode::MemAssignFailed`] | backend |
//! | `"parallel-model"` | [`ErrorCode::ParallelModelFailed`] | backend |
//! | *(new — `argo-verify` race detector)* | [`ErrorCode::DataRace`] | verify |
//! | *(new — `argo-verify` schedule validator)* | [`ErrorCode::UnsoundSchedule`] | verify |
//! | *(new — `argo-verify` placement validator)* | [`ErrorCode::PlacementOverflow`] | verify |
//! | *(new — `argo-verify` comm-ordering check)* | [`ErrorCode::CommOrdering`] | verify |
//! | *(new — `argo-verify` lints)* | [`ErrorCode::UninitRead`], [`ErrorCode::DeadStore`], [`ErrorCode::UnreachableStmt`] | verify |

pub mod artifact;
pub mod cancel;
pub mod codec;
pub mod diag;
pub mod fingerprint;
pub mod observer;
pub mod session;

pub use artifact::{
    Artifact, BackendResult, CostTable, FrontendArtifact, TaskCosts, ToolchainResult,
};
pub use cancel::CancelToken;
pub use codec::{Codec, DecodeError, Decoder, Encoder};
pub use diag::{Diagnostic, ErrorCode, Stage};
pub use fingerprint::{schedule_fingerprint, Fingerprint, FingerprintHasher, Fingerprintable};
pub use observer::{
    stage_span_name, CollectingObserver, FeedbackSnapshot, NullObserver, StageEvent, StageObserver,
    StageSummary, TraceObserver, TracingObserver,
};
pub use session::{ScheduleCache, Toolflow};

pub(crate) use session::feed_frontend_config;

use argo_adl::Platform;
use argo_htg::Granularity;
use argo_ir::ast::Program;
use argo_wcet::system::MhpMode;
use argo_wcet::value::ValueCtx;

/// Which scheduler the mapping stage uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// HEFT-style list scheduling (default).
    List,
    /// Exact branch-and-bound (small graphs).
    BranchAndBound,
    /// Simulated annealing refinement.
    Anneal,
}

impl SchedulerKind {
    /// Stable lower-case label, shared by reports, CLI parsing and the
    /// canonical fingerprint encodings (a single source of truth: a new
    /// variant fails to compile until it has a label).
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::List => "list",
            SchedulerKind::BranchAndBound => "bnb",
            SchedulerKind::Anneal => "anneal",
        }
    }
}

/// Tool-chain configuration.
#[derive(Debug, Clone)]
pub struct ToolchainConfig {
    /// Task extraction granularity.
    pub granularity: Granularity,
    /// Chunk parallelizable loops into `core_count` chunks first.
    pub chunk_loops: bool,
    /// Scheduler for the mapping stage.
    pub scheduler: SchedulerKind,
    /// MHP precision of the system-level analysis.
    pub mhp: MhpMode,
    /// Maximum feedback iterations (≥ 1).
    pub feedback_rounds: u32,
    /// Ranges for entry-function integer parameters (loop bounds).
    pub value_ctx: ValueCtx,
}

impl Default for ToolchainConfig {
    fn default() -> ToolchainConfig {
        ToolchainConfig {
            granularity: Granularity::Loop,
            chunk_loops: true,
            scheduler: SchedulerKind::List,
            // Static precedence MHP is sound for any dispatch timing;
            // window MHP is tighter but assumes time-triggered release.
            mhp: MhpMode::Static,
            feedback_rounds: 3,
            value_ctx: ValueCtx::default(),
        }
    }
}

/// Runs the program-side stages: validation, predictability
/// transformations (§ II-B), loop-bound value analysis and HTG task
/// extraction with access annotation.
///
/// Thin wrapper over a default (observer-less) session; see
/// [`Toolflow::run_frontend`]. `core_count` is the only platform
/// property the frontend observes (it controls DOALL chunking); pass
/// `platform.core_count()` when driving a single compile, or the
/// point's core count when sweeping a design space.
///
/// # Errors
///
/// Returns a [`Diagnostic`] naming the failing step.
pub fn frontend(
    program: Program,
    entry: &str,
    core_count: usize,
    cfg: &ToolchainConfig,
) -> Result<FrontendArtifact, Diagnostic> {
    let seq = std::sync::atomic::AtomicU64::new(0);
    session::run_frontend_impl(program, entry, core_count, cfg, None, &seq)
}

/// Computes the feedback round-0 code-level WCETs: every task costed on
/// core 0 with the conservative all-shared memory placement.
///
/// Thin wrapper over a default session; see
/// [`Toolflow::run_seed_costs`].
///
/// # Errors
///
/// Returns a [`Diagnostic`] if the code-level analysis fails.
pub fn seed_costs(
    artifact: &FrontendArtifact,
    entry: &str,
    platform: &Platform,
) -> Result<CostTable, Diagnostic> {
    let seq = std::sync::atomic::AtomicU64::new(0);
    session::run_seed_costs_impl(artifact, entry, platform, None, &seq)
}

/// Runs the platform-side stages on a frontend artifact: the iterative
/// schedule ↔ placement ↔ WCET feedback loop (§ II-E), parallel model
/// construction (§ II-C) and system-level WCET analysis (§ II-D).
///
/// Thin wrapper over a default session; see [`Toolflow::run_backend`].
///
/// # Errors
///
/// Returns a [`Diagnostic`] naming the failing step.
pub fn backend(
    artifact: FrontendArtifact,
    entry: &str,
    platform: &Platform,
    cfg: &ToolchainConfig,
    seed: Option<&CostTable>,
) -> Result<BackendResult, Diagnostic> {
    let seq = std::sync::atomic::AtomicU64::new(0);
    session::run_backend_impl(artifact, entry, platform, cfg, seed, None, &seq, None)
}

/// Runs the complete ARGO flow on `program` for `platform` — a thin
/// wrapper over a default [`Toolflow`] session (the one-line migration
/// path for legacy callers).
///
/// # Errors
///
/// Returns a [`Diagnostic`] naming the failing step: validation,
/// transformation, loop-bound analysis, extraction, WCET or
/// parallel-model construction.
pub fn compile(
    program: Program,
    entry: &str,
    platform: &Platform,
    cfg: &ToolchainConfig,
) -> Result<BackendResult, Diagnostic> {
    Toolflow::new(program, entry)
        .platform(platform)
        .config(cfg.clone())
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::parse::parse_program;

    // A compute-heavy map + reduction, the shape of the paper's use-case
    // kernels (transcendental math per element). Compute-to-traffic ratio
    // matters: memory-bound kernels gain little guaranteed speedup because
    // contention inflation eats the overlap — exactly the trade-off
    // experiment E2 sweeps.
    const MAP_REDUCE: &str = r#"
        real main(real a[256], real b[256]) {
            real s; int i;
            s = 0.0;
            for (i = 0; i < 256; i = i + 1) {
                b[i] = sqrt(a[i]) * 2.0 + sin(a[i]) + pow(a[i], 2.0);
            }
            for (i = 0; i < 256; i = i + 1) { s = s + b[i]; }
            return s;
        }
    "#;

    #[test]
    fn end_to_end_compiles_and_improves_wcet() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(4);
        let r = compile(program, "main", &platform, &ToolchainConfig::default()).unwrap();
        r.parallel.validate().unwrap();
        assert!(r.system.bound > 0);
        assert!(
            r.wcet_speedup() > 1.2,
            "parallel WCET should beat sequential: speedup {}",
            r.wcet_speedup()
        );
    }

    #[test]
    fn single_core_has_speedup_one() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(1);
        let r = compile(program, "main", &platform, &ToolchainConfig::default()).unwrap();
        assert_eq!(r.parallel.sync_count(), 0);
        assert!((r.wcet_speedup() - 1.0).abs() < 0.01);
    }

    #[test]
    fn feedback_loop_terminates_and_stabilises() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(2);
        let cfg = ToolchainConfig {
            feedback_rounds: 5,
            ..Default::default()
        };
        let r = compile(program, "main", &platform, &cfg).unwrap();
        assert!(r.feedback_iterations <= 5);
    }

    #[test]
    fn all_schedulers_produce_valid_results() {
        for sk in [
            SchedulerKind::List,
            SchedulerKind::BranchAndBound,
            SchedulerKind::Anneal,
        ] {
            let program = parse_program(MAP_REDUCE).unwrap();
            let platform = Platform::xentium_manycore(2);
            let cfg = ToolchainConfig {
                scheduler: sk,
                ..Default::default()
            };
            let r = compile(program, "main", &platform, &cfg).unwrap();
            r.parallel.validate().unwrap();
        }
    }

    #[test]
    fn report_mentions_key_numbers() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(2);
        let r = compile(program, "main", &platform, &ToolchainConfig::default()).unwrap();
        let rep = r.report();
        assert!(rep.contains("parallel   WCET bound"));
        assert!(rep.contains("guaranteed speedup"));
    }

    #[test]
    fn unknown_entry_is_reported_with_code_and_entity() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(2);
        let err = compile(
            program,
            "nonexistent",
            &platform,
            &ToolchainConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err.stage, Stage::Frontend);
        assert_eq!(err.code, ErrorCode::UnknownEntry);
        assert_eq!(err.entity.as_deref(), Some("nonexistent"));
    }

    #[test]
    fn zero_core_platform_is_an_invalid_platform_diagnostic() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(0);
        let err = compile(program, "main", &platform, &ToolchainConfig::default()).unwrap_err();
        assert_eq!(err.code, ErrorCode::InvalidPlatform);
        assert_eq!(err.stage, Stage::Backend);
        assert!(err.message.contains("no cores"), "{err}");
    }

    #[test]
    fn empty_function_body_is_an_empty_htg_diagnostic() {
        let src = "void main(real a[8]) { }";
        let program = parse_program(src).unwrap();
        let platform = Platform::xentium_manycore(2);
        let err = compile(program, "main", &platform, &ToolchainConfig::default()).unwrap_err();
        assert_eq!(err.code, ErrorCode::EmptyHtg);
        assert_eq!(err.entity.as_deref(), Some("main"));
    }

    #[test]
    fn unbounded_loop_is_an_unbounded_loop_diagnostic() {
        let src = r#"
            void main(int n, real a[8]) {
                int i;
                for (i = 0; i < n; i = i + 1) { a[0] = a[0] + 1.0; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let platform = Platform::xentium_manycore(2);
        // No value context bounds `n`, so the trip count is unboundable.
        let err = compile(program, "main", &platform, &ToolchainConfig::default()).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnboundedLoop);
        assert_eq!(err.stage, Stage::Frontend);
    }

    #[test]
    fn session_without_platform_reports_missing_platform() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let flow = Toolflow::new(program, "main");
        let err = flow.run().unwrap_err();
        assert_eq!(err.code, ErrorCode::MissingPlatform);
        // The diagnostic names the stage of the operation that was
        // attempted, not a fixed one.
        assert_eq!(
            flow.frontend_fingerprint().unwrap_err().stage,
            Stage::Frontend
        );
        assert_eq!(
            flow.seed_cost_fingerprint().unwrap_err().stage,
            Stage::SeedCosts
        );
        assert_eq!(flow.run_frontend().unwrap_err().stage, Stage::Frontend);
    }

    #[test]
    fn failing_stage_emits_error_event_and_stays_well_nested() {
        let obs = CollectingObserver::new();
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(2);
        let flow = Toolflow::new(program, "nonexistent")
            .platform(&platform)
            .observer(&obs);
        let err = flow.run_frontend().unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownEntry);
        // A failing stage is still closed: started → errored, never a
        // dangling start (a shared observer must survive failing points).
        assert!(obs.well_nested());
        let errors = obs.errors();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, Stage::Frontend);
        assert_eq!(errors[0].1.code, ErrorCode::UnknownEntry);
        assert_eq!(obs.finished_count(Stage::Frontend), 0);
    }

    #[test]
    fn borrowed_session_with_fingerprint_hint_matches_owned() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(4);
        let owned = Toolflow::new(program.clone(), "main").platform(&platform);
        let fp = owned.program_fingerprint();
        let hinted = Toolflow::borrowed(&program, "main")
            .platform(&platform)
            .with_program_fingerprint(fp);
        assert_eq!(hinted.program_fingerprint(), fp);
        assert_eq!(
            owned.frontend_fingerprint().unwrap(),
            hinted.frontend_fingerprint().unwrap()
        );
        assert_eq!(
            owned.seed_cost_fingerprint().unwrap(),
            hinted.seed_cost_fingerprint().unwrap()
        );
        let a = owned.run_frontend().unwrap();
        let b = hinted.run_frontend().unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn sequential_loop_is_not_parallelized_but_compiles() {
        let src = r#"
            void main(real b[64]) {
                int i;
                for (i = 1; i < 64; i = i + 1) { b[i] = b[i-1] + 1.0; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let platform = Platform::xentium_manycore(4);
        let r = compile(program, "main", &platform, &ToolchainConfig::default()).unwrap();
        assert!(r.wcet_speedup() <= 1.05);
    }

    #[test]
    fn noc_platform_compiles() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::kit_tile_noc(2, 2);
        let r = compile(program, "main", &platform, &ToolchainConfig::default()).unwrap();
        assert!(r.system.bound > 0);
    }

    #[test]
    fn staged_session_matches_monolithic_compile() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(4);
        let cfg = ToolchainConfig::default();
        let whole = compile(program.clone(), "main", &platform, &cfg).unwrap();
        let flow = Toolflow::new(program, "main")
            .platform(&platform)
            .config(cfg);
        let art = flow.run_frontend().unwrap();
        let staged = flow.run_backend(art, None).unwrap();
        assert_eq!(whole.system, staged.system);
        assert_eq!(whole.sequential_bound, staged.sequential_bound);
        assert_eq!(whole.iso_costs, staged.iso_costs);
        assert_eq!(whole.feedback_iterations, staged.feedback_iterations);
        assert_eq!(whole.report(), staged.report());
        assert_eq!(whole.fingerprint(), staged.fingerprint());
    }

    #[test]
    fn seeded_backend_matches_unseeded() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(4);
        for sk in [
            SchedulerKind::List,
            SchedulerKind::BranchAndBound,
            SchedulerKind::Anneal,
        ] {
            let cfg = ToolchainConfig {
                scheduler: sk,
                ..Default::default()
            };
            let flow = Toolflow::new(program.clone(), "main")
                .platform(&platform)
                .config(cfg);
            let art = flow.run_frontend().unwrap();
            let costs = flow.run_seed_costs(&art).unwrap();
            let seeded = flow.run_backend(art.clone(), Some(&costs)).unwrap();
            let plain = flow.run_backend(art, None).unwrap();
            assert_eq!(seeded.system, plain.system);
            assert_eq!(seeded.iso_costs, plain.iso_costs);
            assert_eq!(seeded.sequential_bound, plain.sequential_bound);
        }
    }

    #[test]
    fn frontend_is_deterministic_for_equal_inputs() {
        let cfg = ToolchainConfig::default();
        let a = frontend(parse_program(MAP_REDUCE).unwrap(), "main", 4, &cfg).unwrap();
        let b = frontend(parse_program(MAP_REDUCE).unwrap(), "main", 4, &cfg).unwrap();
        assert_eq!(
            argo_ir::printer::print_program(&a.program),
            argo_ir::printer::print_program(&b.program)
        );
        assert_eq!(a.htg, b.htg);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn stage_fingerprints_separate_what_stages_observe() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let p4 = Platform::xentium_manycore(4);
        let p4b = Platform::xentium_manycore(4);
        let p2 = Platform::xentium_manycore(2);
        let base = Toolflow::new(program.clone(), "main").platform(&p4);
        let same = Toolflow::new(program.clone(), "main").platform(&p4b);
        // Equal inputs → equal keys.
        assert_eq!(
            base.frontend_fingerprint().unwrap(),
            same.frontend_fingerprint().unwrap()
        );
        assert_eq!(
            base.seed_cost_fingerprint().unwrap(),
            same.seed_cost_fingerprint().unwrap()
        );
        // A backend-only axis (scheduler) leaves both stage keys alone.
        let sched = Toolflow::new(program.clone(), "main")
            .platform(&p4)
            .config(ToolchainConfig {
                scheduler: SchedulerKind::Anneal,
                ..Default::default()
            });
        assert_eq!(
            base.frontend_fingerprint().unwrap(),
            sched.frontend_fingerprint().unwrap()
        );
        assert_eq!(
            base.seed_cost_fingerprint().unwrap(),
            sched.seed_cost_fingerprint().unwrap()
        );
        // Core count changes the frontend key (chunking observes it).
        let cores = Toolflow::new(program.clone(), "main").platform(&p2);
        assert_ne!(
            base.frontend_fingerprint().unwrap(),
            cores.frontend_fingerprint().unwrap()
        );
        // An SPM-only platform change keeps the frontend key but moves
        // the seed-costs key.
        let mut spm_platform = Platform::xentium_manycore(4);
        spm_platform.cores[0].spm_bytes = 1234;
        let spm = Toolflow::new(program, "main").platform(&spm_platform);
        assert_eq!(
            base.frontend_fingerprint().unwrap(),
            spm.frontend_fingerprint().unwrap()
        );
        assert_ne!(
            base.seed_cost_fingerprint().unwrap(),
            spm.seed_cost_fingerprint().unwrap()
        );
    }

    #[test]
    fn observer_sees_paired_events_and_feedback_rounds() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(4);
        let obs = CollectingObserver::new();
        let flow = Toolflow::new(program, "main")
            .platform(&platform)
            .observer(&obs);
        let art = flow.run_frontend().unwrap();
        let costs = flow.run_seed_costs(&art).unwrap();
        let r = flow.run_backend(art, Some(&costs)).unwrap();
        assert!(obs.well_nested());
        assert_eq!(obs.finished_count(Stage::Frontend), 1);
        assert_eq!(obs.finished_count(Stage::SeedCosts), 1);
        assert_eq!(obs.finished_count(Stage::Backend), 1);
        let rounds = obs.feedback_rounds();
        assert_eq!(rounds.len() as u32, r.feedback_iterations);
        assert!(rounds.last().unwrap().stable || rounds.len() == 3);
        for snap in &rounds {
            assert_eq!(snap.assignment.len(), r.parallel.graph.len());
        }
    }

    #[test]
    fn schedule_cache_is_hit_by_graph_preserving_axes_and_preserves_results() {
        use std::collections::HashMap;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Mutex;

        #[derive(Default)]
        struct CountingCache {
            map: Mutex<HashMap<Fingerprint, argo_sched::Schedule>>,
            hits: AtomicU64,
            misses: AtomicU64,
        }
        impl ScheduleCache for CountingCache {
            fn schedule(
                &self,
                key: Fingerprint,
                build: &mut dyn FnMut() -> argo_sched::Schedule,
            ) -> argo_sched::Schedule {
                let mut map = self.map.lock().unwrap();
                if let Some(s) = map.get(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return s.clone();
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                let s = build();
                map.insert(key, s.clone());
                s
            }
        }

        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(4);
        let cache = CountingCache::default();
        let run = |mhp, cache: Option<&dyn ScheduleCache>| {
            let mut flow = Toolflow::new(program.clone(), "main")
                .platform(&platform)
                .config(ToolchainConfig {
                    mhp,
                    ..Default::default()
                });
            if let Some(c) = cache {
                flow = flow.schedule_cache(c);
            }
            flow.run().unwrap()
        };
        use argo_wcet::system::MhpMode;
        let plain = run(MhpMode::Static, None);
        let cached = run(MhpMode::Static, Some(&cache));
        assert_eq!(plain.system, cached.system, "cache must be transparent");
        assert_eq!(plain.report(), cached.report());
        // Hits can already happen within one run: consecutive feedback
        // rounds whose re-costing converges produce identical graphs.
        let misses_after_first = cache.misses.load(Ordering::Relaxed);
        let hits_after_first = cache.hits.load(Ordering::Relaxed);
        assert!(misses_after_first > 0);

        // The MHP axis leaves graph, platform and scheduler alone: a
        // re-run under a different MHP mode is served from the cache.
        let windows = run(MhpMode::Windows, Some(&cache));
        assert_eq!(
            cache.misses.load(Ordering::Relaxed),
            misses_after_first,
            "MHP-only change must not rebuild schedules"
        );
        assert_eq!(
            cache.hits.load(Ordering::Relaxed) - hits_after_first,
            u64::from(windows.feedback_iterations),
            "every round of the re-run hits"
        );
        assert_eq!(windows.parallel.graph.len(), cached.parallel.graph.len());
    }

    #[test]
    fn task_graph_fingerprint_ignores_labels_but_sees_structure() {
        use argo_sched::TaskGraph;
        let base = TaskGraph {
            cost: vec![5, 7, 9],
            edges: vec![(0, 1, 16), (1, 2, 8)],
            names: vec!["a".into(), "b".into(), "c".into()],
            htg_ids: vec![],
        };
        let mut renamed = base.clone();
        renamed.names = vec!["x".into(), "y".into(), "z".into()];
        assert_eq!(base.fingerprint(), renamed.fingerprint());
        let mut recosted = base.clone();
        recosted.cost[1] = 8;
        assert_ne!(base.fingerprint(), recosted.fingerprint());
        let mut rewired = base.clone();
        rewired.edges[0] = (0, 2, 16);
        assert_ne!(base.fingerprint(), rewired.fingerprint());
        // The composite key separates scheduler kinds and platforms.
        let p = Platform::xentium_manycore(2).fingerprint();
        let q = Platform::xentium_manycore(3).fingerprint();
        assert_ne!(
            schedule_fingerprint(&base, p, SchedulerKind::List),
            schedule_fingerprint(&base, p, SchedulerKind::Anneal)
        );
        assert_ne!(
            schedule_fingerprint(&base, p, SchedulerKind::List),
            schedule_fingerprint(&base, q, SchedulerKind::List)
        );
    }

    #[test]
    fn finer_granularity_yields_more_tasks() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(2);
        let coarse = compile(
            program.clone(),
            "main",
            &platform,
            &ToolchainConfig {
                granularity: Granularity::Loop,
                ..Default::default()
            },
        )
        .unwrap();
        let fine = compile(
            program,
            "main",
            &platform,
            &ToolchainConfig {
                granularity: Granularity::Stmt,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(fine.parallel.graph.len() >= coarse.parallel.graph.len());
    }
}
