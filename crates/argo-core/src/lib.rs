//! # argo-core — the ARGO tool-chain driver (paper Fig. 1)
//!
//! Chains every stage of the ARGO design workflow:
//!
//! ```text
//! model/mini-C ──► transforms ──► HTG extraction ──► scheduling/mapping
//!      ▲                                                    │
//!      │                                                    ▼
//!      └─── iterative optimisation ◄── system-level ◄── parallel model
//!                (§ II-E feedback)       WCET (§ II-D)     (§ II-C)
//! ```
//!
//! The phase-ordering problem the paper calls out — task WCETs depend on
//! memory placement, placement depends on the schedule, the schedule
//! depends on task WCETs — is resolved exactly as § II-E prescribes:
//! "WCET information is fed back to the previous compilation phases to
//! enable an iterative optimization of the parallelization process".
//! [`compile`] starts from a conservative all-shared placement, then
//! re-costs, re-schedules and re-places until the assignment stabilises
//! (bounded by [`ToolchainConfig::feedback_rounds`]).

use argo_adl::{MemoryMap, Placement, Platform};
use argo_htg::accesses::AnnotateCtx;
use argo_htg::{extract::extract, Granularity, Htg};
use argo_ir::ast::Program;
use argo_parir::ParallelProgram;
use argo_sched::anneal::SimulatedAnnealing;
use argo_sched::bnb::BranchAndBound;
use argo_sched::list::ListScheduler;
use argo_sched::{evaluate_assignment, CommModel, SchedCtx, Schedule, Scheduler, TaskGraph};
use argo_transform::chunk::chunk_all_parallel_loops;
use argo_transform::fold::ConstantFold;
use argo_transform::Pass;
use argo_wcet::cost::CostCtx;
use argo_wcet::schema::{function_wcets, stmt_ids_wcet};
use argo_wcet::system::{analyze, task_shared_accesses, MhpMode, SystemWcet};
use argo_wcet::value::{loop_bounds, LoopBounds, ValueCtx};
use std::collections::BTreeMap;
use std::fmt;

/// Which scheduler the mapping stage uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// HEFT-style list scheduling (default).
    List,
    /// Exact branch-and-bound (small graphs).
    BranchAndBound,
    /// Simulated annealing refinement.
    Anneal,
}

/// Tool-chain configuration.
#[derive(Debug, Clone)]
pub struct ToolchainConfig {
    /// Task extraction granularity.
    pub granularity: Granularity,
    /// Chunk parallelizable loops into `core_count` chunks first.
    pub chunk_loops: bool,
    /// Scheduler for the mapping stage.
    pub scheduler: SchedulerKind,
    /// MHP precision of the system-level analysis.
    pub mhp: MhpMode,
    /// Maximum feedback iterations (≥ 1).
    pub feedback_rounds: u32,
    /// Ranges for entry-function integer parameters (loop bounds).
    pub value_ctx: ValueCtx,
}

impl Default for ToolchainConfig {
    fn default() -> ToolchainConfig {
        ToolchainConfig {
            granularity: Granularity::Loop,
            chunk_loops: true,
            scheduler: SchedulerKind::List,
            // Static precedence MHP is sound for any dispatch timing;
            // window MHP is tighter but assumes time-triggered release.
            mhp: MhpMode::Static,
            feedback_rounds: 3,
            value_ctx: ValueCtx::default(),
        }
    }
}

/// Everything the tool-chain produced for one program/platform pair.
#[derive(Debug, Clone)]
pub struct ToolchainResult {
    /// The explicitly parallel program (schedule, plans, memory map).
    pub parallel: ParallelProgram,
    /// System-level WCET analysis result; `system.bound` is the headline
    /// guaranteed parallel WCET.
    pub system: SystemWcet,
    /// WCET bound of the same task set executed sequentially on one core
    /// (with the same memory map) — the speedup baseline.
    pub sequential_bound: u64,
    /// Per-task isolated WCETs (final feedback round).
    pub iso_costs: Vec<u64>,
    /// Per-task worst-case shared-access counts.
    pub shared_accesses: Vec<u64>,
    /// Loop bounds used by the code-level analysis.
    pub bounds: LoopBounds,
    /// The HTG (post-transformation).
    pub htg: Htg,
    /// Feedback iterations actually performed.
    pub feedback_iterations: u32,
}

impl ToolchainResult {
    /// Guaranteed WCET speedup of the parallel version over sequential
    /// execution (values < 1 mean parallelization did not pay off).
    pub fn wcet_speedup(&self) -> f64 {
        self.sequential_bound as f64 / self.system.bound.max(1) as f64
    }

    /// Human-readable summary report.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "ARGO tool-chain report — entry `{}`",
            self.parallel.entry
        );
        let _ = writeln!(
            s,
            "  tasks: {}   signals: {}   feedback iterations: {}",
            self.parallel.graph.len(),
            self.parallel.sync_count(),
            self.feedback_iterations
        );
        let _ = writeln!(
            s,
            "  sequential WCET bound: {:>12} cycles",
            self.sequential_bound
        );
        let _ = writeln!(
            s,
            "  parallel   WCET bound: {:>12} cycles",
            self.system.bound
        );
        let _ = writeln!(s, "  guaranteed speedup:    {:>12.2}x", self.wcet_speedup());
        let _ = writeln!(s, "  per-task (iso → inflated, contenders):");
        for t in 0..self.parallel.graph.len() {
            let _ = writeln!(
                s,
                "    {:<24} core{} {:>9} → {:>9}  k={}",
                self.parallel.graph.names[t],
                self.parallel.schedule.assignment[t].0,
                self.system.iso_wcet[t],
                self.system.task_wcet[t],
                self.system.contenders[t],
            );
        }
        s
    }
}

/// Tool-chain error.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolchainError {
    /// The stage that failed.
    pub stage: &'static str,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for ToolchainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tool-chain error in {}: {}", self.stage, self.msg)
    }
}

impl std::error::Error for ToolchainError {}

fn stage_err<E: fmt::Display>(stage: &'static str) -> impl Fn(E) -> ToolchainError {
    move |e| ToolchainError {
        stage,
        msg: e.to_string(),
    }
}

/// The reusable result of the program-side compilation stages: the
/// transformed program, its loop bounds and the annotated HTG.
///
/// Two exploration points that share `(program, entry, granularity,
/// chunking, core count, value context)` produce *identical* frontend
/// artifacts regardless of platform, scheduler or memory configuration —
/// which is what makes them cacheable across a design-space sweep
/// (see the `argo-dse` crate).
#[derive(Debug, Clone)]
pub struct FrontendArtifact {
    /// The program after predictability transformations.
    pub program: Program,
    /// Loop bounds from the value analysis.
    pub bounds: LoopBounds,
    /// The extracted, access-annotated HTG.
    pub htg: Htg,
}

/// Per-task isolated code-level WCETs, keyed by HTG task id.
pub type TaskCosts = BTreeMap<argo_htg::TaskId, u64>;

/// Runs the program-side stages: validation, predictability
/// transformations (§ II-B), loop-bound value analysis and HTG task
/// extraction with access annotation.
///
/// `core_count` is the only platform property the frontend observes (it
/// controls DOALL chunking); pass `platform.core_count()` when driving a
/// single compile, or the point's core count when sweeping a design space.
///
/// # Errors
///
/// Returns [`ToolchainError`] naming the failing stage: validation, entry
/// lookup, transformation, loop-bound analysis or extraction.
pub fn frontend(
    mut program: Program,
    entry: &str,
    core_count: usize,
    cfg: &ToolchainConfig,
) -> Result<FrontendArtifact, ToolchainError> {
    argo_ir::validate::validate(&program).map_err(stage_err("validate"))?;
    if program.function(entry).is_none() {
        return Err(ToolchainError {
            stage: "entry",
            msg: format!("no function `{entry}` in program"),
        });
    }

    // --- Program analysis & predictability transformations (§ II-B).
    ConstantFold
        .run(&mut program)
        .map_err(stage_err("transform"))?;
    program.renumber();
    if cfg.chunk_loops && core_count > 1 {
        chunk_all_parallel_loops(&mut program, entry, core_count).map_err(stage_err("chunk"))?;
        ConstantFold
            .run(&mut program)
            .map_err(stage_err("transform"))?;
        program.renumber();
    }
    argo_ir::validate::validate(&program).map_err(stage_err("validate-post-transform"))?;

    // --- Loop bounds (value analysis).
    let bounds = loop_bounds(&program, entry, &cfg.value_ctx).map_err(stage_err("loop-bounds"))?;

    // --- Task extraction (HTG) + access annotation.
    let mut htg = extract(&program, entry, cfg.granularity).map_err(stage_err("extract"))?;
    let actx = AnnotateCtx {
        bounds: bounds.clone(),
        default_bound: 1,
    };
    argo_htg::accesses::annotate(&mut htg, &program, &actx);

    Ok(FrontendArtifact {
        program,
        bounds,
        htg,
    })
}

/// Computes the feedback round-0 code-level WCETs: every task costed on
/// core 0 with the conservative all-shared memory placement.
///
/// This table depends only on `(artifact, entry, platform)` — not on the
/// scheduler or MHP mode — so design-space points that share a platform
/// and program can reuse it (the second cache tier of `argo-dse`).
///
/// # Errors
///
/// Returns [`ToolchainError`] if the code-level analysis fails.
pub fn seed_costs(
    artifact: &FrontendArtifact,
    entry: &str,
    platform: &Platform,
) -> Result<TaskCosts, ToolchainError> {
    let mem = all_shared_map(&artifact.program, entry);
    let ctx = CostCtx::new(&artifact.program, platform, argo_adl::CoreId(0), 1, &mem);
    let fw = function_wcets(&ctx, &artifact.bounds).map_err(stage_err("code-wcet"))?;
    let mut costs: TaskCosts = BTreeMap::new();
    for &tid in &artifact.htg.top_level {
        let task = artifact.htg.task(tid);
        let w = stmt_ids_wcet(&ctx, &artifact.bounds, &fw, entry, &task.stmts)
            .map_err(stage_err("task-wcet"))?;
        costs.insert(tid, w.max(1));
    }
    Ok(costs)
}

/// Runs the platform-side stages on a frontend artifact: the iterative
/// schedule ↔ placement ↔ WCET feedback loop (§ II-E), parallel model
/// construction (§ II-C) and system-level WCET analysis (§ II-D).
///
/// `seed` optionally supplies the round-0 task costs (as produced by
/// [`seed_costs`] for the same artifact and platform), skipping the first
/// code-level WCET pass. Passing `None` computes them in place; the result
/// is identical either way.
///
/// # Errors
///
/// Returns [`ToolchainError`] naming the failing stage.
pub fn backend(
    artifact: FrontendArtifact,
    entry: &str,
    platform: &Platform,
    cfg: &ToolchainConfig,
    seed: Option<&TaskCosts>,
) -> Result<ToolchainResult, ToolchainError> {
    platform.validate().map_err(stage_err("platform"))?;
    let FrontendArtifact {
        program,
        bounds,
        htg,
    } = artifact;

    // --- Iterative schedule ↔ placement ↔ WCET loop (§ II-E).
    let mut mem = all_shared_map(&program, entry);
    let mut assignment: Option<Vec<argo_adl::CoreId>> = None;
    let mut schedule: Option<Schedule> = None;
    let mut graph = TaskGraph::default();
    let mut iso_costs: Vec<u64> = Vec::new();
    let mut iterations = 0;
    for round in 0..cfg.feedback_rounds.max(1) {
        iterations = round + 1;
        // Code-level WCET per task, on its (current) core, isolated. The
        // function-WCET table only depends on the core, so it is computed
        // once per distinct core rather than once per task.
        let costs: TaskCosts = match (round, seed) {
            (0, Some(seeded)) => seeded.clone(),
            _ => {
                let mut costs: TaskCosts = BTreeMap::new();
                let mut fw_by_core: BTreeMap<argo_adl::CoreId, _> = BTreeMap::new();
                for (idx, &tid) in htg.top_level.iter().enumerate() {
                    let core = match &assignment {
                        Some(a) => a[idx],
                        None => argo_adl::CoreId(0),
                    };
                    let ctx = CostCtx::new(&program, platform, core, 1, &mem);
                    if let std::collections::btree_map::Entry::Vacant(e) = fw_by_core.entry(core) {
                        let fw = function_wcets(&ctx, &bounds).map_err(stage_err("code-wcet"))?;
                        e.insert(fw);
                    }
                    let fw = &fw_by_core[&core];
                    let task = htg.task(tid);
                    let w = stmt_ids_wcet(&ctx, &bounds, fw, entry, &task.stmts)
                        .map_err(stage_err("task-wcet"))?;
                    costs.insert(tid, w.max(1));
                }
                costs
            }
        };
        graph = TaskGraph::from_htg(&htg, &costs);
        iso_costs = graph.cost.clone();

        // Mapping/scheduling stage.
        let ctx = SchedCtx {
            platform,
            comm: CommModel::SignalOnly,
        };
        let sched: Schedule = match cfg.scheduler {
            SchedulerKind::List => ListScheduler::new().schedule(&graph, &ctx),
            SchedulerKind::BranchAndBound => BranchAndBound::new().schedule(&graph, &ctx),
            SchedulerKind::Anneal => SimulatedAnnealing::new().schedule(&graph, &ctx),
        };
        let stable = assignment.as_ref() == Some(&sched.assignment);
        assignment = Some(sched.assignment.clone());
        schedule = Some(sched);

        // Memory placement for the new mapping (WCET fed back).
        mem = argo_parir::mem_assign::assign(
            &program,
            &htg,
            &graph,
            schedule.as_ref().expect("just set"),
            platform,
        )
        .map_err(stage_err("mem-assign"))?;
        if stable {
            break;
        }
    }
    let schedule = schedule.expect("at least one round");

    // --- Parallel program model (§ II-C).
    let parallel = ParallelProgram::build(program, &htg, graph, schedule, platform)
        .map_err(stage_err("parallel-model"))?;

    // --- System-level WCET (§ II-D).
    let shared_accesses = task_shared_accesses(&htg, &parallel.graph, &parallel.memory_map);
    let system = analyze(&parallel, platform, &iso_costs, &shared_accesses, cfg.mhp);

    // --- Sequential baseline: same tasks, one core, no parallel overlap.
    let seq_ctx = SchedCtx {
        platform,
        comm: CommModel::SignalOnly,
    };
    let seq = evaluate_assignment(
        &parallel.graph,
        &seq_ctx,
        &vec![argo_adl::CoreId(0); parallel.graph.len()],
    );
    let sequential_bound = seq.makespan();

    Ok(ToolchainResult {
        parallel,
        system,
        sequential_bound,
        iso_costs,
        shared_accesses,
        bounds,
        htg,
        feedback_iterations: iterations,
    })
}

/// Runs the complete ARGO flow on `program` for `platform`:
/// [`frontend`] followed by [`backend`].
///
/// # Errors
///
/// Returns [`ToolchainError`] naming the failing stage: validation,
/// transformation, loop-bound analysis, extraction, WCET or parallel-model
/// construction.
pub fn compile(
    program: Program,
    entry: &str,
    platform: &Platform,
    cfg: &ToolchainConfig,
) -> Result<ToolchainResult, ToolchainError> {
    platform.validate().map_err(stage_err("platform"))?;
    let artifact = frontend(program, entry, platform.core_count(), cfg)?;
    backend(artifact, entry, platform, cfg, None)
}

/// The conservative round-0 placement: every array in shared memory.
fn all_shared_map(program: &Program, entry: &str) -> MemoryMap {
    let mut map = MemoryMap::new();
    let Some(f) = program.function(entry) else {
        return map;
    };
    let mut cursor = 0u64;
    for (name, ty) in argo_ir::validate::symbol_table(f) {
        if ty.is_array() {
            map.insert(
                name,
                Placement {
                    space: argo_adl::MemSpace::Shared,
                    base_addr: cursor,
                    size_bytes: ty.size_bytes(),
                },
            );
            cursor += ty.size_bytes();
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::parse::parse_program;

    // A compute-heavy map + reduction, the shape of the paper's use-case
    // kernels (transcendental math per element). Compute-to-traffic ratio
    // matters: memory-bound kernels gain little guaranteed speedup because
    // contention inflation eats the overlap — exactly the trade-off
    // experiment E2 sweeps.
    const MAP_REDUCE: &str = r#"
        real main(real a[256], real b[256]) {
            real s; int i;
            s = 0.0;
            for (i = 0; i < 256; i = i + 1) {
                b[i] = sqrt(a[i]) * 2.0 + sin(a[i]) + pow(a[i], 2.0);
            }
            for (i = 0; i < 256; i = i + 1) { s = s + b[i]; }
            return s;
        }
    "#;

    #[test]
    fn end_to_end_compiles_and_improves_wcet() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(4);
        let r = compile(program, "main", &platform, &ToolchainConfig::default()).unwrap();
        r.parallel.validate().unwrap();
        assert!(r.system.bound > 0);
        assert!(
            r.wcet_speedup() > 1.2,
            "parallel WCET should beat sequential: speedup {}",
            r.wcet_speedup()
        );
    }

    #[test]
    fn single_core_has_speedup_one() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(1);
        let r = compile(program, "main", &platform, &ToolchainConfig::default()).unwrap();
        assert_eq!(r.parallel.sync_count(), 0);
        assert!((r.wcet_speedup() - 1.0).abs() < 0.01);
    }

    #[test]
    fn feedback_loop_terminates_and_stabilises() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(2);
        let cfg = ToolchainConfig {
            feedback_rounds: 5,
            ..Default::default()
        };
        let r = compile(program, "main", &platform, &cfg).unwrap();
        assert!(r.feedback_iterations <= 5);
    }

    #[test]
    fn all_schedulers_produce_valid_results() {
        for sk in [
            SchedulerKind::List,
            SchedulerKind::BranchAndBound,
            SchedulerKind::Anneal,
        ] {
            let program = parse_program(MAP_REDUCE).unwrap();
            let platform = Platform::xentium_manycore(2);
            let cfg = ToolchainConfig {
                scheduler: sk,
                ..Default::default()
            };
            let r = compile(program, "main", &platform, &cfg).unwrap();
            r.parallel.validate().unwrap();
        }
    }

    #[test]
    fn report_mentions_key_numbers() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(2);
        let r = compile(program, "main", &platform, &ToolchainConfig::default()).unwrap();
        let rep = r.report();
        assert!(rep.contains("parallel   WCET bound"));
        assert!(rep.contains("guaranteed speedup"));
    }

    #[test]
    fn unknown_entry_is_reported_with_stage() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(2);
        let err = compile(
            program,
            "nonexistent",
            &platform,
            &ToolchainConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err.stage, "entry");
    }

    #[test]
    fn sequential_loop_is_not_parallelized_but_compiles() {
        let src = r#"
            void main(real b[64]) {
                int i;
                for (i = 1; i < 64; i = i + 1) { b[i] = b[i-1] + 1.0; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let platform = Platform::xentium_manycore(4);
        let r = compile(program, "main", &platform, &ToolchainConfig::default()).unwrap();
        assert!(r.wcet_speedup() <= 1.05);
    }

    #[test]
    fn noc_platform_compiles() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::kit_tile_noc(2, 2);
        let r = compile(program, "main", &platform, &ToolchainConfig::default()).unwrap();
        assert!(r.system.bound > 0);
    }

    #[test]
    fn staged_pipeline_matches_monolithic_compile() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(4);
        let cfg = ToolchainConfig::default();
        let whole = compile(program.clone(), "main", &platform, &cfg).unwrap();
        let art = frontend(program, "main", platform.core_count(), &cfg).unwrap();
        let staged = backend(art, "main", &platform, &cfg, None).unwrap();
        assert_eq!(whole.system, staged.system);
        assert_eq!(whole.sequential_bound, staged.sequential_bound);
        assert_eq!(whole.iso_costs, staged.iso_costs);
        assert_eq!(whole.feedback_iterations, staged.feedback_iterations);
    }

    #[test]
    fn seeded_backend_matches_unseeded() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(4);
        for sk in [
            SchedulerKind::List,
            SchedulerKind::BranchAndBound,
            SchedulerKind::Anneal,
        ] {
            let cfg = ToolchainConfig {
                scheduler: sk,
                ..Default::default()
            };
            let art = frontend(program.clone(), "main", platform.core_count(), &cfg).unwrap();
            let costs = seed_costs(&art, "main", &platform).unwrap();
            let seeded = backend(art.clone(), "main", &platform, &cfg, Some(&costs)).unwrap();
            let plain = backend(art, "main", &platform, &cfg, None).unwrap();
            assert_eq!(seeded.system, plain.system);
            assert_eq!(seeded.iso_costs, plain.iso_costs);
            assert_eq!(seeded.sequential_bound, plain.sequential_bound);
        }
    }

    #[test]
    fn frontend_is_deterministic_for_equal_inputs() {
        let cfg = ToolchainConfig::default();
        let a = frontend(parse_program(MAP_REDUCE).unwrap(), "main", 4, &cfg).unwrap();
        let b = frontend(parse_program(MAP_REDUCE).unwrap(), "main", 4, &cfg).unwrap();
        assert_eq!(
            argo_ir::printer::print_program(&a.program),
            argo_ir::printer::print_program(&b.program)
        );
        assert_eq!(a.htg, b.htg);
    }

    #[test]
    fn finer_granularity_yields_more_tasks() {
        let program = parse_program(MAP_REDUCE).unwrap();
        let platform = Platform::xentium_manycore(2);
        let coarse = compile(
            program.clone(),
            "main",
            &platform,
            &ToolchainConfig {
                granularity: Granularity::Loop,
                ..Default::default()
            },
        )
        .unwrap();
        let fine = compile(
            program,
            "main",
            &platform,
            &ToolchainConfig {
                granularity: Granularity::Stmt,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(fine.parallel.graph.len() >= coarse.parallel.graph.len());
    }
}
