//! Evaluation budgets: how much of the lattice a search may spend.
//!
//! A [`Budget`] bounds a search along two independent axes:
//!
//! * **`max_evaluations`** — a hard cap on *fresh* point evaluations
//!   (memoized re-requests of an already-evaluated point are free: the
//!   underlying toolflow result is cached and costs no wall time);
//! * **`stall`** — front-improvement stopping (ROADMAP item (d)): the
//!   search stops once `stall` consecutive *requested* points have
//!   failed to improve the Pareto front. Requested means every point a
//!   strategy asks the [`crate::Evaluator`] for, fresh or memoized — a
//!   strategy cycling over known points is stalled by definition.
//!
//! Both limits are optional; [`Budget::unlimited`] disables both, in
//! which case termination is the strategy's own responsibility (every
//! built-in strategy also carries an internal iteration cap).

/// Stopping rule for a budgeted search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Maximum number of fresh point evaluations (`None` = unlimited).
    pub max_evaluations: Option<usize>,
    /// Stop after this many consecutive requested points without a
    /// Pareto-front improvement (`None` = never stall-stop).
    pub stall: Option<usize>,
}

impl Budget {
    /// No limits: strategies run to their internal caps.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Budget of at most `n` fresh evaluations.
    pub fn evaluations(n: usize) -> Budget {
        Budget {
            max_evaluations: Some(n),
            stall: None,
        }
    }

    /// Adds a stall limit: stop once the front has not improved for `n`
    /// consecutive requested points.
    #[must_use]
    pub fn with_stall(mut self, n: usize) -> Budget {
        self.stall = Some(n);
        self
    }

    /// Fresh evaluations still allowed after `spent` have happened.
    pub fn remaining(&self, spent: usize) -> usize {
        match self.max_evaluations {
            Some(max) => max.saturating_sub(spent),
            None => usize::MAX,
        }
    }

    /// Whether `since_improvement` consecutive improvement-free points
    /// exhaust the stall allowance.
    pub fn stalled(&self, since_improvement: usize) -> bool {
        matches!(self.stall, Some(n) if since_improvement >= n)
    }
}

impl std::fmt::Display for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.max_evaluations {
            Some(n) => write!(f, "max={n}")?,
            None => write!(f, "max=unlimited")?,
        }
        match self.stall {
            Some(n) => write!(f, " stall={n}"),
            None => write!(f, " stall=none"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_saturates() {
        let b = Budget::evaluations(10);
        assert_eq!(b.remaining(3), 7);
        assert_eq!(b.remaining(10), 0);
        assert_eq!(b.remaining(99), 0);
        assert_eq!(Budget::unlimited().remaining(1_000_000), usize::MAX);
    }

    #[test]
    fn stall_only_trips_when_configured() {
        assert!(!Budget::unlimited().stalled(1_000_000));
        let b = Budget::evaluations(10).with_stall(5);
        assert!(!b.stalled(4));
        assert!(b.stalled(5));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Budget::unlimited().to_string(), "max=unlimited stall=none");
        assert_eq!(
            Budget::evaluations(64).with_stall(16).to_string(),
            "max=64 stall=16"
        );
    }
}
