//! Simulated-annealing neighborhood walker over the lattice.
//!
//! Reuses the move/temperature machinery style of
//! `argo-sched/src/anneal.rs` (single-component moves, linear cooling,
//! Metropolis acceptance), lifted from schedule assignments to lattice
//! coordinates. Multi-objective twist: one SA chain optimizes one
//! *scalarization* of the objective triple, so the walker runs several
//! restart chains, each with a different deterministic weight vector
//! (corners first, then mixtures) — together the chains pull toward
//! different regions of the Pareto surface while the shared
//! [`Evaluator`] archive keeps every non-dominated point any chain
//! stumbles over.

use crate::lattice::Lattice;
use crate::strategy::{Evaluator, SearchStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic scalarization weights, cycled over chains: the three
/// objective corners, the balanced center, then skewed mixtures.
const WEIGHTS: [[f64; 3]; 8] = [
    [1.0, 0.0, 0.0],
    [0.0, 1.0, 0.0],
    [0.0, 0.0, 1.0],
    [1.0, 1.0, 1.0],
    [2.0, 1.0, 0.5],
    [0.5, 2.0, 1.0],
    [1.0, 0.5, 2.0],
    [2.0, 2.0, 0.5],
];

/// Simulated-annealing lattice walker.
#[derive(Debug, Clone, Copy)]
pub struct Annealing {
    /// Independent restart chains (each with its own scalarization).
    pub chains: usize,
    /// Proposal steps per chain (`0` = derive from the evaluation
    /// budget: `max_evaluations / chains`, at least 8).
    pub steps_per_chain: usize,
    /// Initial temperature in normalized-energy units.
    pub initial_temp: f64,
}

impl Default for Annealing {
    fn default() -> Annealing {
        Annealing {
            chains: 8,
            steps_per_chain: 0,
            initial_temp: 0.35,
        }
    }
}

impl Annealing {
    /// Annealing strategy with default parameters.
    pub fn new() -> Annealing {
        Annealing::default()
    }

    /// Scalar energy of an objective vector under chain weights
    /// (normalized per axis by the evaluator's running bounds).
    fn energy(ev: &Evaluator<'_>, obj: &crate::pareto::Objectives, w: &[f64; 3]) -> f64 {
        let n = ev.normalized(obj);
        let total: f64 = w.iter().sum();
        n.iter().zip(w).map(|(x, wi)| x * wi).sum::<f64>() / total.max(1e-12)
    }
}

impl SearchStrategy for Annealing {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn search(&self, lattice: &Lattice, seed: u64, ev: &mut Evaluator<'_>) {
        if lattice.is_empty() {
            return;
        }
        let chains = self.chains.max(1);
        let steps = if self.steps_per_chain > 0 {
            self.steps_per_chain
        } else {
            // Keep ~half the budget for the closure pass.
            match ev.budget().max_evaluations {
                Some(m) => (m / 2 / chains).max(8),
                None => 64,
            }
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A_11EA);

        for chain in 0..chains {
            if ev.exhausted() {
                return;
            }
            let w = &WEIGHTS[chain % WEIGHTS.len()];
            let mut current = lattice.random_coords(&mut rng);
            let mut current_obj = ev.evaluate(lattice.encode(&current));
            for step in 0..steps {
                if ev.exhausted() {
                    return;
                }
                let Some(neighbor) = lattice.random_neighbor(&current, &mut rng) else {
                    break; // single-point lattice
                };
                let candidate_obj = ev.evaluate(lattice.encode(&neighbor));
                let temp = (self.initial_temp * (1.0 - step as f64 / steps as f64)).max(1e-4);
                let accept = match (current_obj, candidate_obj) {
                    // Walk out of a failing region unconditionally.
                    (None, _) => true,
                    // Never walk into one.
                    (Some(_), None) => false,
                    (Some(cur), Some(cand)) => {
                        let delta =
                            Annealing::energy(ev, &cand, w) - Annealing::energy(ev, &cur, w);
                        delta <= 0.0 || rng.gen_bool((-delta / temp).exp().clamp(0.0, 1.0))
                    }
                };
                if accept {
                    current = neighbor;
                    current_obj = candidate_obj;
                }
            }
        }
        // Spend whatever remains closing the front's axis neighborhood.
        crate::strategy::pareto_local_search(lattice, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::strategy::tests::{exhaustive_front, recovery, synthetic_eval};

    #[test]
    fn annealing_recovers_most_of_the_synthetic_front_within_budget() {
        let lattice = Lattice::new(vec![4, 4, 4, 4, 2]); // 512 points
        let exhaustive = exhaustive_front(&lattice);
        let mut eval = synthetic_eval(&lattice);
        let mut ev = Evaluator::new(Budget::evaluations(128), &mut eval);
        Annealing::new().search(&lattice, 7, &mut ev);
        assert!(ev.evaluations() <= 128);
        let r = recovery(&ev, &exhaustive);
        assert!(r >= 0.9, "annealing recovered only {r:.2} of the front");
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let lattice = Lattice::new(vec![3, 5, 4]);
        let run = |seed| {
            let mut eval = synthetic_eval(&lattice);
            let mut ev = Evaluator::new(Budget::evaluations(24), &mut eval);
            Annealing::new().search(&lattice, seed, &mut ev);
            (
                ev.results().keys().copied().collect::<Vec<_>>(),
                ev.front_indices(),
            )
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).0, run(10).0);
    }

    #[test]
    fn annealing_survives_single_point_lattices() {
        let one = Lattice::new(vec![1, 1, 1]);
        let mut eval = synthetic_eval(&one);
        let mut ev = Evaluator::new(Budget::unlimited(), &mut eval);
        Annealing::new().search(&one, 2, &mut ev);
        assert_eq!(ev.evaluations(), 1);
    }
}
