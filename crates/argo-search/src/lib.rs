//! # argo-search — budgeted metaheuristic search over the design space
//!
//! PR 1's `argo-dse` engine enumerates the full cartesian lattice and
//! evaluates every point; the ROADMAP flags that as the blocking cost
//! for sweeps with 10⁴+ points. The ARGO toolflow is explicitly
//! *iterative* — WCET feedback steers the parallelization choices — so
//! the search over configurations should be steered too. This crate is
//! that steering layer: adaptive, budget-aware [`SearchStrategy`]
//! implementations that evaluate only a promising fraction of a
//! [`Lattice`] while chasing the same Pareto front the exhaustive sweep
//! would find.
//!
//! The crate deliberately knows nothing about platforms, schedulers or
//! WCETs: the domain is an abstract mixed-radix [`Lattice`] (axis sizes
//! only) and a batch evaluation function mapping flat indices to
//! [`pareto::Objectives`] vectors. `argo-dse` supplies both — its
//! `Explorer::search` wires the design-space axes and the cached
//! toolflow evaluation underneath — which keeps the dependency arrow
//! pointing from the engine to the strategies, never back.
//!
//! ## Choosing a strategy
//!
//! | strategy | CLI label | reach for it when |
//! |----------|-----------|-------------------|
//! | [`Genetic`] | `ga` | default choice: best front coverage per evaluation on mixed axes; crossover exploits axis separability (a good scheduler choice stays good across SPM sizes) |
//! | [`Annealing`] | `anneal` | the lattice is locally smooth (neighboring configurations have similar WCETs) and you want cheap, simple convergence; restart chains with distinct scalarizations cover the front corners |
//! | [`SuccessiveHalving`] | `halving` | whole sub-families of configurations are expected to be bad (wrong platform, hopeless core counts): racing contiguous strata abandons them after a handful of samples |
//!
//! All three respect the same [`Budget`] and the same [`Evaluator`]
//! archive, so they are interchangeable in drivers and comparable in
//! benches (`argo-bench` E9 races them against the exhaustive sweep).
//!
//! ## Budget semantics
//!
//! A [`Budget`] bounds **fresh** evaluations (`max_evaluations`) and
//! front stagnation (`stall`: consecutive requested points without a
//! Pareto-archive improvement — ROADMAP item (d)). Memoized re-requests
//! cost no budget but *do* count as stagnation. Strategies additionally
//! carry internal iteration caps, so even `Budget::unlimited()`
//! terminates.
//!
//! ## Determinism contract
//!
//! For a fixed `(lattice, seed, evaluation function)` triple every
//! strategy requests the same points in the same order and produces the
//! same archive — all randomness flows from the caller's seed through
//! the workspace's deterministic `StdRng` shim, all iteration is over
//! ordered containers, and batch results are consumed in request order
//! regardless of how the backing engine parallelizes them. The
//! `tests/search.rs` suite pins this across runs *and* across worker
//! thread counts.

pub mod anneal;
pub mod budget;
pub mod ga;
pub mod halving;
pub mod lattice;
pub mod pareto;
pub mod strategy;

pub use anneal::Annealing;
pub use budget::Budget;
pub use ga::Genetic;
pub use halving::SuccessiveHalving;
pub use lattice::Lattice;
pub use pareto::{crowding_distance, dominates, pareto_front, pareto_rank, Objectives};
pub use strategy::{BatchEvalFn, Evaluator, SearchStrategy};

/// Parses a strategy CLI label into a boxed strategy with default
/// parameters (`exhaustive` is not a strategy — drivers treat it as
/// "skip the search layer").
pub fn parse_strategy(label: &str) -> Result<Box<dyn SearchStrategy>, String> {
    match label {
        "ga" => Ok(Box::new(Genetic::new())),
        "anneal" => Ok(Box::new(Annealing::new())),
        "halving" => Ok(Box::new(SuccessiveHalving::new())),
        other => Err(format!(
            "unknown strategy `{other}` (expected exhaustive|ga|anneal|halving)"
        )),
    }
}

/// All built-in strategies with default parameters, in CLI-label order
/// (for benches and tests that race every strategy).
pub fn all_strategies() -> Vec<Box<dyn SearchStrategy>> {
    vec![
        Box::new(Genetic::new()),
        Box::new(Annealing::new()),
        Box::new(SuccessiveHalving::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_labels_parse() {
        for label in ["ga", "anneal", "halving"] {
            assert_eq!(parse_strategy(label).unwrap().name(), label);
        }
        assert!(parse_strategy("exhaustive").is_err());
        assert!(parse_strategy("tabu").is_err());
        assert_eq!(all_strategies().len(), 3);
    }
}
