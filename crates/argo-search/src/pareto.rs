//! Pareto dominance, front extraction, non-dominated ranking and
//! crowding distances over the (cores, WCET bound, SPM bytes) triple.
//!
//! All three objectives are minimized: fewer cores and less scratchpad
//! are cheaper silicon, a lower guaranteed parallel WCET bound is a
//! tighter real-time guarantee. A point is on the front iff no other
//! point is at least as good in every objective and strictly better in
//! one — the § II-E resource/timing trade-off surface a system designer
//! actually chooses from.
//!
//! This module moved here from `argo-dse` (which re-exports it
//! unchanged): the steered strategies need ranking and crowding on top
//! of plain front extraction, and `argo-search` must not depend on the
//! exploration engine it steers.

/// Objective vector of one exploration point, all minimized.
pub type Objectives = [u64; 3];

/// Whether `a` dominates `b`: no worse in every objective, strictly
/// better in at least one.
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
}

/// Indices of the non-dominated points, in ascending index order.
///
/// Duplicate objective vectors are kept together: equal points do not
/// dominate each other, so either all copies are on the front or none is.
pub fn pareto_front(objectives: &[Objectives]) -> Vec<usize> {
    (0..objectives.len())
        .filter(|&i| {
            !objectives
                .iter()
                .any(|other| dominates(other, &objectives[i]))
        })
        .collect()
}

/// Non-dominated sorting rank per point: rank 0 is the Pareto front,
/// rank 1 the front of what remains once rank 0 is removed, and so on
/// (the NSGA-II fitness ordering).
pub fn pareto_rank(objectives: &[Objectives]) -> Vec<usize> {
    let n = objectives.len();
    let mut rank = vec![usize::MAX; n];
    let mut assigned = 0;
    let mut current = 0;
    while assigned < n {
        let layer: Vec<usize> = (0..n)
            .filter(|&i| rank[i] == usize::MAX)
            .filter(|&i| {
                !(0..n).any(|j| rank[j] == usize::MAX && dominates(&objectives[j], &objectives[i]))
            })
            .collect();
        debug_assert!(!layer.is_empty(), "non-dominated layer cannot be empty");
        for &i in &layer {
            rank[i] = current;
        }
        assigned += layer.len();
        current += 1;
    }
    rank
}

/// Crowding distance per point, computed within each rank layer (the
/// NSGA-II diversity measure): boundary points of a layer get
/// `f64::INFINITY`, interior points the sum of normalized neighbor
/// gaps per objective. Larger = less crowded = preferred at equal rank.
// The 0..3 loop walks objective *axes* of the inner arrays, not the
// outer slice clippy thinks it indexes.
#[allow(clippy::needless_range_loop)]
pub fn crowding_distance(objectives: &[Objectives], rank: &[usize]) -> Vec<f64> {
    let n = objectives.len();
    let mut dist = vec![0.0f64; n];
    let max_rank = rank.iter().copied().max().unwrap_or(0);
    for layer_rank in 0..=max_rank {
        let layer: Vec<usize> = (0..n).filter(|&i| rank[i] == layer_rank).collect();
        if layer.len() <= 2 {
            for &i in &layer {
                dist[i] = f64::INFINITY;
            }
            continue;
        }
        for obj in 0..3 {
            let mut order = layer.clone();
            // Tie-break by index so the ordering (and thus the distance
            // assignment) is deterministic.
            order.sort_by_key(|&i| (objectives[i][obj], i));
            let lo = objectives[order[0]][obj];
            let hi = objectives[*order.last().unwrap()][obj];
            let span = (hi - lo) as f64;
            dist[order[0]] = f64::INFINITY;
            dist[*order.last().unwrap()] = f64::INFINITY;
            if span == 0.0 {
                continue;
            }
            for w in order.windows(3) {
                let gap = (objectives[w[2]][obj] - objectives[w[0]][obj]) as f64 / span;
                if dist[w[1]].is_finite() {
                    dist[w[1]] += gap;
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(dominates(&[1, 2, 3], &[1, 2, 4]));
        assert!(dominates(&[1, 2, 3], &[2, 3, 4]));
        assert!(
            !dominates(&[1, 2, 3], &[1, 2, 3]),
            "equal points do not dominate"
        );
        assert!(!dominates(&[1, 2, 4], &[1, 3, 3]), "incomparable");
    }

    #[test]
    fn front_drops_dominated_points() {
        let objs = vec![
            [1, 100, 16], // cheap but slow — on the front
            [4, 40, 16],  // on the front
            [4, 50, 16],  // dominated by [4,40,16]
            [8, 40, 16],  // dominated by [4,40,16]
            [8, 30, 8],   // on the front
        ];
        assert_eq!(pareto_front(&objs), vec![0, 1, 4]);
    }

    #[test]
    fn duplicates_survive_together() {
        let objs = vec![[2, 2, 2], [2, 2, 2], [3, 3, 3]];
        assert_eq!(pareto_front(&objs), vec![0, 1]);
    }

    #[test]
    fn front_never_contains_dominated_point() {
        // Small exhaustive check over a deterministic pseudo-random set.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let objs: Vec<Objectives> = (0..64)
            .map(|_| [next() % 8 + 1, next() % 100, next() % 4 * 4096])
            .collect();
        let front = pareto_front(&objs);
        assert!(!front.is_empty());
        for &i in &front {
            for o in &objs {
                assert!(!dominates(o, &objs[i]));
            }
        }
        // Every non-front point is dominated by someone.
        for i in 0..objs.len() {
            if !front.contains(&i) {
                assert!(objs.iter().any(|o| dominates(o, &objs[i])));
            }
        }
    }

    #[test]
    fn ranks_partition_and_order_the_set() {
        let objs = vec![
            [1, 100, 16], // front (rank 0)
            [4, 40, 16],  // front
            [4, 50, 16],  // rank 1 (dominated only by [4,40,16])
            [8, 60, 16],  // rank 2 (dominated by [4,50,16] too)
            [8, 30, 8],   // front
        ];
        let rank = pareto_rank(&objs);
        assert_eq!(rank, vec![0, 0, 1, 2, 0]);
        // Rank 0 is exactly the front.
        let front = pareto_front(&objs);
        for (i, &r) in rank.iter().enumerate() {
            assert_eq!(r == 0, front.contains(&i));
        }
    }

    #[test]
    fn crowding_prefers_boundary_and_sparse_points() {
        // One layer, spread along the WCET axis with a dense pair.
        let objs = vec![[1, 10, 0], [1, 11, 0], [1, 50, 0], [1, 100, 0]];
        let rank = vec![0; 4];
        let d = crowding_distance(&objs, &rank);
        assert!(d[0].is_infinite() && d[3].is_infinite(), "{d:?}");
        assert!(d[2] > d[1], "sparse interior beats dense interior: {d:?}");
    }

    #[test]
    fn crowding_small_layers_are_all_infinite() {
        let objs = vec![[1, 2, 3], [4, 5, 6]];
        let d = crowding_distance(&objs, &pareto_rank(&objs));
        assert!(d.iter().all(|x| x.is_infinite()));
    }
}
