//! The strategy contract and the budget-enforcing [`Evaluator`].
//!
//! A [`SearchStrategy`] walks a [`Lattice`] and asks the [`Evaluator`]
//! for point objectives. The evaluator owns everything the strategy
//! must not get wrong: memoization (re-requesting a point is free and
//! returns the recorded result), budget enforcement (fresh evaluations
//! beyond [`Budget::max_evaluations`] are refused), the running Pareto
//! archive, and stall detection ([`Budget::stall`] improvement-free
//! requests stop the search). Strategies just propose points and read
//! the archive.
//!
//! Batching: [`Evaluator::evaluate_batch`] forwards all not-yet-known
//! points of a batch to the backing evaluation function in one call, so
//! an engine sitting underneath (the `argo-dse` explorer) can fan the
//! batch out over worker threads. Results are returned in request
//! order, which keeps every strategy deterministic for a fixed seed
//! regardless of how the backing function schedules the work.

use crate::budget::Budget;
use crate::lattice::Lattice;
use crate::pareto::{dominates, Objectives};
use std::collections::BTreeMap;

/// The backing evaluation function: maps each flat lattice index of the
/// batch to its objective vector, `None` for points that fail to
/// compile/analyze. Must return exactly one entry per requested index,
/// in request order.
pub type BatchEvalFn<'e> = dyn FnMut(&[usize]) -> Vec<Option<Objectives>> + 'e;

/// Memoizing, budget-enforcing evaluation front-end handed to a
/// [`SearchStrategy`].
pub struct Evaluator<'e> {
    eval: &'e mut BatchEvalFn<'e>,
    budget: Budget,
    results: BTreeMap<usize, Option<Objectives>>,
    evaluations: usize,
    front: Vec<usize>,
    since_improvement: usize,
    lo: Objectives,
    hi: Objectives,
    any_success: bool,
}

impl<'e> Evaluator<'e> {
    /// Evaluator over `eval` under `budget`.
    pub fn new(budget: Budget, eval: &'e mut BatchEvalFn<'e>) -> Evaluator<'e> {
        Evaluator {
            eval,
            budget,
            results: BTreeMap::new(),
            evaluations: 0,
            front: Vec::new(),
            since_improvement: 0,
            lo: [u64::MAX; 3],
            hi: [0; 3],
            any_success: false,
        }
    }

    /// The budget this evaluator enforces.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Fresh evaluations performed so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Whether the search must stop: evaluation budget spent or front
    /// improvement stalled. Strategies check this in every loop.
    pub fn exhausted(&self) -> bool {
        self.budget.remaining(self.evaluations) == 0 || self.budget.stalled(self.since_improvement)
    }

    /// Requests the batch, evaluating at most the remaining budget of
    /// fresh points; output is aligned with `candidates`. Entries that
    /// could not be evaluated (budget already spent) are `None`.
    pub fn evaluate_batch(&mut self, candidates: &[usize]) -> Vec<Option<Objectives>> {
        // Fresh indices in first-occurrence order, truncated to budget.
        let mut fresh: Vec<usize> = Vec::new();
        for &idx in candidates {
            if !self.results.contains_key(&idx) && !fresh.contains(&idx) {
                fresh.push(idx);
            }
        }
        fresh.truncate(self.budget.remaining(self.evaluations));
        let mut outcomes: BTreeMap<usize, Option<Objectives>> = BTreeMap::new();
        if !fresh.is_empty() {
            let answers = (self.eval)(&fresh);
            assert_eq!(
                answers.len(),
                fresh.len(),
                "evaluation function must answer every requested point"
            );
            outcomes.extend(fresh.iter().copied().zip(answers));
        }
        // Fold outcomes in *request order*, so the stall counter keeps
        // the documented "consecutive requested points without an
        // improvement" meaning: a fresh improvement clears the known
        // re-requests (and in-batch duplicates) that arrived before it,
        // never the ones after.
        for &idx in candidates {
            match outcomes.remove(&idx) {
                Some(outcome) => {
                    self.results.insert(idx, outcome);
                    self.evaluations += 1;
                    self.record(idx, outcome);
                }
                // A known point, an in-batch duplicate, or a point the
                // spent budget refused: cannot improve the front, so it
                // counts toward the stall allowance (refused points are
                // moot — the budget already stops the search).
                None => self.since_improvement += 1,
            }
        }
        candidates
            .iter()
            .map(|idx| self.results.get(idx).copied().flatten())
            .collect()
    }

    /// Requests one point (see [`Evaluator::evaluate_batch`]).
    pub fn evaluate(&mut self, idx: usize) -> Option<Objectives> {
        self.evaluate_batch(&[idx])[0]
    }

    /// Folds a fresh outcome into the archive, bounds and stall state.
    fn record(&mut self, idx: usize, outcome: Option<Objectives>) {
        let improved = match outcome {
            None => false,
            Some(obj) => {
                for (axis, &v) in obj.iter().enumerate() {
                    self.lo[axis] = self.lo[axis].min(v);
                    self.hi[axis] = self.hi[axis].max(v);
                }
                self.any_success = true;
                let objectives = |i: usize| self.results[&i].expect("front points succeeded");
                let covered = self.front.iter().any(|&f| {
                    let fo = objectives(f);
                    fo == obj || dominates(&fo, &obj)
                });
                if !covered {
                    self.front.retain(|&f| !dominates(&obj, &objectives(f)));
                    self.front.push(idx);
                    self.front.sort_unstable();
                }
                !covered
            }
        };
        if improved {
            self.since_improvement = 0;
        } else {
            self.since_improvement += 1;
        }
    }

    /// Indices of the current Pareto archive, ascending.
    pub fn front_indices(&self) -> Vec<usize> {
        self.front.clone()
    }

    /// All recorded outcomes, keyed by flat index.
    pub fn results(&self) -> &BTreeMap<usize, Option<Objectives>> {
        &self.results
    }

    /// The recorded objectives of `idx` (`None` if unevaluated or
    /// failed).
    pub fn objectives(&self, idx: usize) -> Option<Objectives> {
        self.results.get(&idx).copied().flatten()
    }

    /// Successfully evaluated points `(index, objectives)`, ascending by
    /// index.
    pub fn successes(&self) -> Vec<(usize, Objectives)> {
        self.results
            .iter()
            .filter_map(|(&i, o)| o.map(|obj| (i, obj)))
            .collect()
    }

    /// Normalizes an objective vector into `[0, 1]` per axis using the
    /// running min/max of every success seen so far (0.5 on axes with no
    /// spread yet). The scalarizing strategies (annealing energy,
    /// halving tie-breaks) use this shared scale.
    pub fn normalized(&self, obj: &Objectives) -> [f64; 3] {
        let mut out = [0.5f64; 3];
        if !self.any_success {
            return out;
        }
        for axis in 0..3 {
            let span = self.hi[axis].saturating_sub(self.lo[axis]);
            if span > 0 {
                out[axis] = obj[axis].saturating_sub(self.lo[axis]) as f64 / span as f64;
            }
        }
        out
    }
}

/// Pareto local search: repeatedly evaluates every unevaluated
/// single-axis neighbor of every archive member until the neighborhood
/// is closed (no archive member has a fresh neighbor left) or the
/// budget runs out. On smooth design spaces the Pareto front is largely
/// axis-connected — the same configuration at the next SPM size or core
/// count is often on the front too — so this closure pass is how every
/// built-in strategy spends its tail budget after its own exploration
/// phase.
/// Budget discipline: neighbors are ordered by learned *axis
/// productivity* — an axis whose sampled neighbors so far always
/// reproduced their origin's exact objective vector (a redundant axis:
/// chunking that does not change the binary, a scheduler tie) sinks to
/// the back of every batch, so budget truncation cuts the moves that
/// cannot reveal new front vectors.
pub fn pareto_local_search(lattice: &Lattice, ev: &mut Evaluator<'_>) {
    let axes = lattice.dims().len();
    let mut attempts = vec![0usize; axes];
    let mut productive = vec![0usize; axes];
    loop {
        if ev.exhausted() {
            return;
        }
        // Fresh neighbors of every archive member, tagged with the axis
        // the move changes and the member it refines.
        let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
        let mut seen: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for f in ev.front_indices() {
            let coords = lattice.decode(f);
            for axis in lattice.free_axes() {
                for v in 0..lattice.dims()[axis] {
                    if v == coords[axis] {
                        continue;
                    }
                    let mut c = coords.clone();
                    c[axis] = v;
                    let n = lattice.encode(&c);
                    if !ev.results().contains_key(&n) && seen.insert(n) {
                        candidates.push((axis, f, n));
                    }
                }
            }
        }
        if candidates.is_empty() {
            return; // front neighborhood closed
        }
        // Known-redundant axes last; stable within each group.
        candidates.sort_by_key(|&(axis, _, _)| (attempts[axis] > 0 && productive[axis] == 0, axis));
        let batch: Vec<usize> = candidates.iter().map(|&(_, _, n)| n).collect();
        ev.evaluate_batch(&batch);
        for &(axis, f, n) in &candidates {
            if !ev.results().contains_key(&n) {
                continue; // truncated by the budget — never sampled
            }
            attempts[axis] += 1;
            if ev.objectives(n) != ev.objectives(f) {
                productive[axis] += 1;
            }
        }
    }
}

/// A budgeted, seeded search procedure over a lattice.
///
/// Contract: `search` must be **deterministic** for a fixed
/// `(lattice, seed, evaluation results)` triple — all randomness comes
/// from an `StdRng` seeded with `seed`, and all iteration is over
/// ordered containers. Strategies stop when [`Evaluator::exhausted`]
/// turns true, and additionally carry an internal iteration cap so an
/// unlimited budget still terminates.
pub trait SearchStrategy {
    /// Stable CLI/report label of the strategy.
    fn name(&self) -> &'static str;

    /// Explores `lattice`, requesting points from `ev` until the budget
    /// is exhausted or the strategy considers the front converged.
    fn search(&self, lattice: &Lattice, seed: u64, ev: &mut Evaluator<'_>);
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::pareto::pareto_front;

    /// Synthetic deterministic objective function shaped like a real
    /// DSE lattice: smooth in the core and SPM axes, a discrete
    /// scheduler-like penalty axis, redundant axes that do not move the
    /// objectives (so front vectors have many representative points,
    /// exactly as chunking/scheduler ties do in real sweeps), and a
    /// failure pocket.
    pub(crate) fn synthetic_eval(
        lattice: &Lattice,
    ) -> impl FnMut(&[usize]) -> Vec<Option<Objectives>> + '_ {
        move |batch: &[usize]| {
            batch
                .iter()
                .map(|&idx| {
                    let c = lattice.decode(idx);
                    let a = c.first().copied().unwrap_or(0);
                    let b = c.get(1).copied().unwrap_or(0);
                    let s = c.get(2).copied().unwrap_or(0);
                    if a == 2 && b == 3 {
                        return None; // failure pocket
                    }
                    let cores = [1u64, 2, 4, 6][a % 4];
                    let penalty = [120u64, 60, 90, 75][b % 4];
                    let spm = 1024 * s as u64;
                    let wcet = 1200 / cores + penalty - 20 * s as u64;
                    Some([cores, wcet, spm])
                })
                .collect()
        }
    }

    /// Brute-force distinct front vectors of the synthetic function.
    pub(crate) fn exhaustive_front(lattice: &Lattice) -> Vec<Objectives> {
        let mut eval = synthetic_eval(lattice);
        let all: Vec<usize> = (0..lattice.len()).collect();
        let outs = eval(&all);
        let objs: Vec<Objectives> = outs.into_iter().flatten().collect();
        let mut front: Vec<Objectives> = pareto_front(&objs).into_iter().map(|i| objs[i]).collect();
        front.sort_unstable();
        front.dedup();
        front
    }

    /// Fraction of the exhaustive front's distinct vectors present in
    /// the evaluator's archive.
    pub(crate) fn recovery(ev: &Evaluator<'_>, exhaustive: &[Objectives]) -> f64 {
        let found: std::collections::BTreeSet<Objectives> = ev
            .front_indices()
            .iter()
            .filter_map(|&i| ev.objectives(i))
            .collect();
        let hit = exhaustive.iter().filter(|o| found.contains(*o)).count();
        hit as f64 / exhaustive.len().max(1) as f64
    }

    #[test]
    fn evaluator_memoizes_and_respects_budget() {
        let calls = std::cell::Cell::new(0usize);
        let mut raw = |batch: &[usize]| {
            calls.set(calls.get() + batch.len());
            batch.iter().map(|&i| Some([1, i as u64, 0])).collect()
        };
        let mut ev = Evaluator::new(Budget::evaluations(5), &mut raw);
        assert_eq!(ev.evaluate_batch(&[0, 1, 2, 1, 0]).len(), 5);
        assert_eq!(ev.evaluations(), 3);
        ev.evaluate(2); // memoized — free
        assert_eq!(ev.evaluations(), 3);
        ev.evaluate_batch(&[3, 4, 5, 6]); // truncated to 2 fresh
        assert_eq!(ev.evaluations(), 5);
        assert_eq!(calls.get(), 5, "backing function sees only fresh points");
        assert!(ev.exhausted());
        assert_eq!(ev.evaluate(9), None, "refused beyond budget");
    }

    #[test]
    fn evaluator_maintains_a_true_front() {
        let mut raw = |batch: &[usize]| {
            let objs: &[Option<Objectives>] = &[
                Some([1, 100, 16]),
                Some([4, 40, 16]),
                Some([4, 50, 16]),
                None,
                Some([8, 30, 8]),
                Some([4, 40, 16]), // duplicate vector — not an improvement
            ];
            batch.iter().map(|&i| objs[i]).collect()
        };
        let mut ev = Evaluator::new(Budget::unlimited(), &mut raw);
        ev.evaluate_batch(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(ev.front_indices(), vec![0, 1, 4]);
        // 3 improvements (0, 1, 4); requests 2, 3, 5 were improvement-free.
        assert_eq!(
            ev.since_improvement, 1,
            "5 arrived after the last improvement"
        );
    }

    #[test]
    fn stall_budget_stops_further_evaluation() {
        let mut raw = |batch: &[usize]| {
            batch
                .iter()
                .map(|&i| Some([1, if i == 0 { 1 } else { 50 + i as u64 }, 0]))
                .collect()
        };
        let mut ev = Evaluator::new(Budget::unlimited().with_stall(3), &mut raw);
        for idx in 0..20 {
            if ev.exhausted() {
                break;
            }
            ev.evaluate(idx);
        }
        // Point 0 improves; 1, 2, 3 do not (worse WCET than 1's? no —
        // each later point is dominated by point 0: same cores+spm,
        // higher wcet). After 3 improvement-free points the stall trips.
        assert!(ev.exhausted());
        assert_eq!(ev.evaluations(), 4);
    }
}
