//! NSGA-II-style genetic search: Pareto-rank + crowding selection over
//! the (cores, WCET, SPM) objectives, uniform per-axis crossover and
//! uniform axis mutation.
//!
//! Each generation evaluates its population as one batch (fanned out by
//! the backing engine), then breeds the next generation from *all*
//! successes so far — a steady archive-elitist variant: the breeding
//! pool never forgets a good point, so the front only grows. Offspring
//! duplicating already-evaluated points are discarded during breeding
//! (they would burn stall allowance without burning budget); when the
//! breeder cannot produce enough fresh candidates, the remainder is
//! filled with uniform random unevaluated points, which doubles as the
//! restart mechanism on degenerate lattices.

use crate::lattice::Lattice;
use crate::pareto::{crowding_distance, pareto_rank, Objectives};
use crate::strategy::{Evaluator, SearchStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Genetic (NSGA-II-lite) search strategy.
#[derive(Debug, Clone, Copy)]
pub struct Genetic {
    /// Individuals evaluated per generation.
    pub population: usize,
    /// Hard generation cap (termination under unlimited budgets).
    pub max_generations: usize,
    /// Per-axis mutation probability (`None` = `1 / free axes`).
    pub mutation: Option<f64>,
}

impl Default for Genetic {
    fn default() -> Genetic {
        Genetic {
            population: 16,
            max_generations: 64,
            mutation: None,
        }
    }
}

impl Genetic {
    /// Genetic strategy with default parameters.
    pub fn new() -> Genetic {
        Genetic::default()
    }

    /// Binary tournament on `(rank asc, crowding desc, index asc)`.
    fn tournament<'p>(
        &self,
        rng: &mut StdRng,
        pool: &'p [(usize, Objectives)],
        rank: &[usize],
        crowd: &[f64],
    ) -> &'p (usize, Objectives) {
        let a = rng.gen_range(0..pool.len());
        let b = rng.gen_range(0..pool.len());
        let better = |x: usize, y: usize| {
            rank[x] < rank[y]
                || (rank[x] == rank[y]
                    && (crowd[x] > crowd[y] || (crowd[x] == crowd[y] && pool[x].0 < pool[y].0)))
        };
        if better(a, b) {
            &pool[a]
        } else {
            &pool[b]
        }
    }
}

impl SearchStrategy for Genetic {
    fn name(&self) -> &'static str {
        "ga"
    }

    fn search(&self, lattice: &Lattice, seed: u64, ev: &mut Evaluator<'_>) {
        if lattice.is_empty() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6A_6135);
        let pop_target = self.population.min(lattice.len()).max(1);
        let free = lattice.free_axes();
        let mut_p = self
            .mutation
            .unwrap_or(1.0 / free.len().max(1) as f64)
            .clamp(0.0, 1.0);

        // Generation 0: distinct uniform random individuals.
        let mut population = sample_fresh(lattice, &mut rng, pop_target, &BTreeSet::new());

        for _generation in 0..self.max_generations {
            if ev.exhausted() || population.is_empty() {
                break;
            }
            // Reserve roughly half the budget for the closure pass
            // below (front-neighborhood closure is what turns a seeded
            // archive into full recovery).
            if let Some(m) = ev.budget().max_evaluations {
                if ev.evaluations() * 5 >= m * 2 {
                    break;
                }
            }
            ev.evaluate_batch(&population);
            if ev.exhausted() {
                break;
            }

            // Breeding pool: every success so far (archive elitism).
            let pool = ev.successes();
            let evaluated: BTreeSet<usize> = ev.results().keys().copied().collect();
            if evaluated.len() >= lattice.len() {
                break; // lattice fully explored
            }
            if pool.is_empty() {
                // Nothing compiled yet: random restart.
                population = sample_fresh(lattice, &mut rng, pop_target, &evaluated);
                continue;
            }
            let objs: Vec<Objectives> = pool.iter().map(|&(_, o)| o).collect();
            let rank = pareto_rank(&objs);
            let crowd = crowding_distance(&objs, &rank);

            // Breed fresh offspring; duplicates of evaluated points are
            // discarded (re-requests stall without informing).
            let mut next: Vec<usize> = Vec::with_capacity(pop_target);
            let mut chosen: BTreeSet<usize> = BTreeSet::new();
            for _attempt in 0..pop_target * 8 {
                if next.len() >= pop_target {
                    break;
                }
                let pa = lattice.decode(self.tournament(&mut rng, &pool, &rank, &crowd).0);
                let pb = lattice.decode(self.tournament(&mut rng, &pool, &rank, &crowd).0);
                let mut child: Vec<usize> = pa
                    .iter()
                    .zip(&pb)
                    .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
                    .collect();
                for &axis in &free {
                    if rng.gen_bool(mut_p) {
                        child[axis] = rng.gen_range(0..lattice.dims()[axis]);
                    }
                }
                let idx = lattice.encode(&child);
                if !evaluated.contains(&idx) && chosen.insert(idx) {
                    next.push(idx);
                }
            }
            // Exploration filler for whatever breeding could not supply.
            let mut taken = evaluated;
            taken.extend(next.iter().copied());
            let filler = sample_fresh(lattice, &mut rng, pop_target - next.len(), &taken);
            next.extend(filler);
            population = next;
        }
        // Spend whatever remains closing the front's axis neighborhood.
        crate::strategy::pareto_local_search(lattice, ev);
    }
}

/// Samples up to `want` distinct lattice indices outside `taken`,
/// uniformly at random (bounded rejection sampling, then an ascending
/// scan as a deterministic fallback on dense `taken` sets).
fn sample_fresh(
    lattice: &Lattice,
    rng: &mut StdRng,
    want: usize,
    taken: &BTreeSet<usize>,
) -> Vec<usize> {
    let available = lattice.len().saturating_sub(taken.len());
    let want = want.min(available);
    let mut out: Vec<usize> = Vec::with_capacity(want);
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for _ in 0..want * 16 {
        if out.len() >= want {
            break;
        }
        let idx = lattice.encode(&lattice.random_coords(rng));
        if !taken.contains(&idx) && seen.insert(idx) {
            out.push(idx);
        }
    }
    if out.len() < want {
        for idx in 0..lattice.len() {
            if out.len() >= want {
                break;
            }
            if !taken.contains(&idx) && seen.insert(idx) {
                out.push(idx);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::strategy::tests::{exhaustive_front, recovery, synthetic_eval};

    #[test]
    fn ga_recovers_most_of_the_synthetic_front_within_budget() {
        let lattice = Lattice::new(vec![4, 4, 4, 4, 2]); // 512 points
        let exhaustive = exhaustive_front(&lattice);
        assert!(exhaustive.len() >= 4, "front too trivial: {exhaustive:?}");
        let mut eval = synthetic_eval(&lattice);
        let mut ev = Evaluator::new(Budget::evaluations(128), &mut eval);
        Genetic::new().search(&lattice, 7, &mut ev);
        assert!(ev.evaluations() <= 128);
        let r = recovery(&ev, &exhaustive);
        assert!(r >= 0.9, "GA recovered only {r:.2} of the front");
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let lattice = Lattice::new(vec![3, 5, 4]);
        let run = |seed| {
            let mut eval = synthetic_eval(&lattice);
            let mut ev = Evaluator::new(Budget::evaluations(20), &mut eval);
            Genetic::new().search(&lattice, seed, &mut ev);
            (
                ev.results().keys().copied().collect::<Vec<_>>(),
                ev.front_indices(),
            )
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).0, run(4).0, "different seeds explore differently");
    }

    #[test]
    fn ga_handles_degenerate_lattices() {
        let one = Lattice::new(vec![1, 1]);
        let mut eval = synthetic_eval(&one);
        let mut ev = Evaluator::new(Budget::unlimited(), &mut eval);
        Genetic::new().search(&one, 1, &mut ev);
        assert_eq!(ev.evaluations(), 1);

        let empty = Lattice::new(vec![0, 4]);
        let mut none = |_: &[usize]| -> Vec<Option<Objectives>> { unreachable!() };
        let mut ev = Evaluator::new(Budget::unlimited(), &mut none);
        Genetic::new().search(&empty, 1, &mut ev);
        assert_eq!(ev.evaluations(), 0);
    }
}
