//! The abstract search domain: a mixed-radix index lattice.
//!
//! `argo-search` never sees concrete design axes (platforms, schedulers,
//! SPM capacities …) — it searches over a [`Lattice`]: the cartesian
//! product of axes described only by their sizes. A point is either a
//! flat index in `0..len()` or the equivalent coordinate vector (one
//! component per axis); [`Lattice::encode`]/[`Lattice::decode`] convert
//! between the two in **row-major order with the last axis fastest** —
//! exactly the enumeration order of `argo_dse::DesignSpace::points`, so
//! flat index `i` here is row `i` there.

use rand::rngs::StdRng;
use rand::Rng;

/// A cartesian lattice described by its per-axis sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lattice {
    dims: Vec<usize>,
}

impl Lattice {
    /// Lattice over axes of the given sizes. An empty axis (size 0)
    /// makes the lattice empty.
    pub fn new(dims: Vec<usize>) -> Lattice {
        Lattice { dims }
    }

    /// Per-axis sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of lattice points (product of the axis sizes; 1 for
    /// a zero-axis lattice, 0 when any axis is empty).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the lattice has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Axes with more than one value — the only ones a move can change.
    pub fn free_axes(&self) -> Vec<usize> {
        (0..self.dims.len()).filter(|&a| self.dims[a] > 1).collect()
    }

    /// Coordinates of flat index `idx` (last axis fastest).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn decode(&self, idx: usize) -> Vec<usize> {
        assert!(idx < self.len(), "index {idx} outside lattice");
        let mut rest = idx;
        let mut coords = vec![0; self.dims.len()];
        for (a, &size) in self.dims.iter().enumerate().rev() {
            coords[a] = rest % size;
            rest /= size;
        }
        coords
    }

    /// Flat index of a coordinate vector (inverse of [`Lattice::decode`]).
    ///
    /// # Panics
    ///
    /// Panics if the arity or any component is out of range.
    pub fn encode(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len(), "coordinate arity");
        let mut idx = 0;
        for (a, (&c, &size)) in coords.iter().zip(&self.dims).enumerate() {
            assert!(c < size, "coordinate {c} outside axis {a} (size {size})");
            idx = idx * size + c;
        }
        idx
    }

    /// A uniformly random coordinate vector.
    ///
    /// # Panics
    ///
    /// Panics if the lattice is empty.
    pub fn random_coords(&self, rng: &mut StdRng) -> Vec<usize> {
        assert!(!self.is_empty(), "empty lattice has no points");
        self.dims.iter().map(|&s| rng.gen_range(0..s)).collect()
    }

    /// All single-axis variants of `idx` — every other value of every
    /// free axis — in deterministic (axis, value) order. This is the
    /// refinement neighborhood the strategies mine around Pareto-archive
    /// members: on smooth design spaces, front points cluster along
    /// single axes (same configuration, next SPM size up).
    pub fn axis_neighbors(&self, idx: usize) -> Vec<usize> {
        let coords = self.decode(idx);
        let mut out = Vec::new();
        for axis in self.free_axes() {
            for v in 0..self.dims[axis] {
                if v != coords[axis] {
                    let mut c = coords.clone();
                    c[axis] = v;
                    out.push(self.encode(&c));
                }
            }
        }
        out
    }

    /// A neighbor of `coords`: one uniformly chosen free axis moved to a
    /// uniformly chosen *different* value. Returns `None` when every
    /// axis has a single value (the lattice has exactly one point).
    pub fn random_neighbor(&self, coords: &[usize], rng: &mut StdRng) -> Option<Vec<usize>> {
        let free = self.free_axes();
        if free.is_empty() {
            return None;
        }
        let axis = free[rng.gen_range(0..free.len())];
        let size = self.dims[axis];
        let mut next = rng.gen_range(0..size - 1);
        if next >= coords[axis] {
            next += 1;
        }
        let mut out = coords.to_vec();
        out[axis] = next;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn encode_decode_round_trip_in_row_major_order() {
        let l = Lattice::new(vec![2, 3, 4]);
        assert_eq!(l.len(), 24);
        for idx in 0..l.len() {
            assert_eq!(l.encode(&l.decode(idx)), idx);
        }
        // Last axis fastest: consecutive indices differ in the last axis.
        assert_eq!(l.decode(0), vec![0, 0, 0]);
        assert_eq!(l.decode(1), vec![0, 0, 1]);
        assert_eq!(l.decode(4), vec![0, 1, 0]);
        assert_eq!(l.decode(12), vec![1, 0, 0]);
    }

    #[test]
    fn empty_axis_empties_the_lattice() {
        assert!(Lattice::new(vec![3, 0, 2]).is_empty());
        assert_eq!(Lattice::new(vec![]).len(), 1);
    }

    #[test]
    fn neighbors_change_exactly_one_free_axis() {
        let l = Lattice::new(vec![1, 4, 3]);
        assert_eq!(l.free_axes(), vec![1, 2]);
        let mut rng = StdRng::seed_from_u64(7);
        let start = vec![0, 2, 1];
        for _ in 0..200 {
            let n = l.random_neighbor(&start, &mut rng).unwrap();
            let changed: Vec<usize> = (0..3).filter(|&a| n[a] != start[a]).collect();
            assert_eq!(changed.len(), 1);
            assert_ne!(changed[0], 0, "axis of size 1 must never move");
            assert!(n[changed[0]] < l.dims()[changed[0]]);
        }
        let point = Lattice::new(vec![1, 1]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(point.random_neighbor(&[0, 0], &mut rng).is_none());
    }

    #[test]
    fn random_coords_stay_in_bounds() {
        let l = Lattice::new(vec![2, 5, 1, 3]);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let c = l.random_coords(&mut rng);
            assert!(c.iter().zip(l.dims()).all(|(&x, &s)| x < s));
        }
    }
}
