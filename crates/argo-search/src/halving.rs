//! Successive-halving racing of lattice strata.
//!
//! The lattice is cut into contiguous flat-index blocks ("strata").
//! Because flat indices enumerate the design axes row-major with the
//! *slow* axes outermost (use case, platform, core count), a contiguous
//! block is a coherent sub-family of configurations — racing strata
//! races those families against each other. Each round samples a few
//! unevaluated points per surviving stratum, scores every stratum by
//! how much of the current Pareto archive it owns (tie-broken by its
//! best normalized scalar), discards the worse half, and doubles the
//! per-stratum sample — the classic successive-halving schedule, with
//! rounds-as-samples instead of rounds-as-training-epochs.

use crate::lattice::Lattice;
use crate::strategy::{Evaluator, SearchStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::ops::Range;

/// Successive-halving strategy.
#[derive(Debug, Clone, Copy)]
pub struct SuccessiveHalving {
    /// Number of contiguous strata the lattice is cut into.
    pub strata: usize,
    /// Points sampled per stratum in the first round (doubles every
    /// round).
    pub initial_per_stratum: usize,
}

impl Default for SuccessiveHalving {
    fn default() -> SuccessiveHalving {
        SuccessiveHalving {
            strata: 8,
            initial_per_stratum: 2,
        }
    }
}

impl SuccessiveHalving {
    /// Halving strategy with default parameters.
    pub fn new() -> SuccessiveHalving {
        SuccessiveHalving::default()
    }

    /// Flat-index range of stratum `s` of `total`.
    fn stratum_range(len: usize, s: usize, total: usize) -> Range<usize> {
        (s * len / total)..((s + 1) * len / total)
    }

    /// Samples up to `want` unevaluated indices from `range`:
    /// rejection-sampled first, ascending-scan fallback once the
    /// stratum is nearly exhausted.
    fn sample_stratum(
        range: Range<usize>,
        want: usize,
        evaluated: &BTreeSet<usize>,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        if range.is_empty() {
            return out;
        }
        for _ in 0..want * 16 {
            if out.len() >= want {
                break;
            }
            let idx = rng.gen_range(range.clone());
            if !evaluated.contains(&idx) && seen.insert(idx) {
                out.push(idx);
            }
        }
        if out.len() < want {
            for idx in range {
                if out.len() >= want {
                    break;
                }
                if !evaluated.contains(&idx) && seen.insert(idx) {
                    out.push(idx);
                }
            }
        }
        out
    }
}

impl SearchStrategy for SuccessiveHalving {
    fn name(&self) -> &'static str {
        "halving"
    }

    fn search(&self, lattice: &Lattice, seed: u64, ev: &mut Evaluator<'_>) {
        let len = lattice.len();
        if len == 0 {
            return;
        }
        let total = self.strata.clamp(1, len);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5_4A1F);
        let mut survivors: Vec<usize> = (0..total).collect();
        let mut per_stratum = self.initial_per_stratum.max(1);

        // 32 doubling rounds ≥ 2³² points — a termination cap, not a
        // practical limit.
        for _round in 0..32 {
            if ev.exhausted() {
                return;
            }
            // Reserve roughly half the budget for the closure pass.
            if let Some(m) = ev.budget().max_evaluations {
                if ev.evaluations() * 2 >= m {
                    break;
                }
            }
            let mut evaluated: BTreeSet<usize> = ev.results().keys().copied().collect();
            let front = ev.front_indices();
            let mut batch: Vec<usize> = Vec::new();
            for &s in &survivors {
                let range = SuccessiveHalving::stratum_range(len, s, total);
                // Refinement half: unevaluated single-axis neighbors of
                // archive points that land in this stratum (front points
                // cluster along axes on smooth design spaces).
                let mut picks: Vec<usize> = Vec::new();
                'refine: for &f in &front {
                    for n in lattice.axis_neighbors(f) {
                        if picks.len() >= per_stratum.div_ceil(2) {
                            break 'refine;
                        }
                        if range.contains(&n) && !evaluated.contains(&n) {
                            picks.push(n);
                            evaluated.insert(n);
                        }
                    }
                }
                // Exploration half: uniform random within the stratum.
                let random = SuccessiveHalving::sample_stratum(
                    range,
                    per_stratum - picks.len(),
                    &evaluated,
                    &mut rng,
                );
                evaluated.extend(random.iter().copied());
                picks.extend(random);
                batch.extend(picks);
            }
            if batch.is_empty() {
                break; // surviving strata fully evaluated — go refine
            }
            ev.evaluate_batch(&batch);

            if survivors.len() > 1 {
                // Score: archive points owned (more is better), then the
                // stratum's best normalized scalar (lower is better).
                let front: BTreeSet<usize> = ev.front_indices().into_iter().collect();
                let mut scored: Vec<(usize, usize, f64)> = survivors
                    .iter()
                    .map(|&s| {
                        let range = SuccessiveHalving::stratum_range(len, s, total);
                        let owned = front.iter().filter(|i| range.contains(i)).count();
                        let best = ev
                            .results()
                            .range(range)
                            .filter_map(|(_, o)| *o)
                            .map(|obj| ev.normalized(&obj).iter().sum::<f64>())
                            .fold(f64::INFINITY, f64::min);
                        (s, owned, best)
                    })
                    .collect();
                scored.sort_by(|a, b| {
                    b.1.cmp(&a.1)
                        .then(a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
                        .then(a.0.cmp(&b.0))
                });
                // Halve, but never drop a stratum that currently owns a
                // front point: the racing is against hopeless families,
                // not against the front itself (dropping an owner could
                // permanently cap recovery below 100%).
                let owners = scored.iter().filter(|&&(_, owned, _)| owned > 0).count();
                let keep = survivors.len().div_ceil(2).max(owners);
                survivors = scored[..keep].iter().map(|&(s, _, _)| s).collect();
                survivors.sort_unstable();
            }
            per_stratum *= 2;
        }
        // Spend whatever remains closing the front's axis neighborhood.
        crate::strategy::pareto_local_search(lattice, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::strategy::tests::{exhaustive_front, recovery, synthetic_eval};

    #[test]
    fn halving_recovers_most_of_the_synthetic_front_within_budget() {
        let lattice = Lattice::new(vec![4, 4, 4, 4, 2]); // 512 points
        let exhaustive = exhaustive_front(&lattice);
        let mut eval = synthetic_eval(&lattice);
        let mut ev = Evaluator::new(Budget::evaluations(128), &mut eval);
        SuccessiveHalving::new().search(&lattice, 7, &mut ev);
        assert!(ev.evaluations() <= 128);
        let r = recovery(&ev, &exhaustive);
        assert!(r >= 0.9, "halving recovered only {r:.2} of the front");
    }

    #[test]
    fn halving_is_deterministic_and_terminates_on_tiny_lattices() {
        let lattice = Lattice::new(vec![2, 3]);
        let run = |seed| {
            let mut eval = synthetic_eval(&lattice);
            let mut ev = Evaluator::new(Budget::unlimited(), &mut eval);
            SuccessiveHalving::new().search(&lattice, seed, &mut ev);
            (ev.evaluations(), ev.front_indices())
        };
        // Unlimited budget on a 6-point lattice: halving evaluates all
        // 6 and stops (batch exhaustion), identically per seed.
        assert_eq!(run(5), run(5));
        assert_eq!(run(5).0, 6);
    }

    #[test]
    fn strata_ranges_tile_the_lattice() {
        for len in [1usize, 7, 8, 9, 100] {
            for total in [1usize, 3, 8] {
                let total = total.min(len);
                let mut covered = 0;
                for s in 0..total {
                    let r = SuccessiveHalving::stratum_range(len, s, total);
                    assert_eq!(r.start, covered, "gap before stratum {s}");
                    covered = r.end;
                }
                assert_eq!(covered, len);
            }
        }
    }
}
