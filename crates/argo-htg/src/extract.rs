//! Task extraction: from a mini-C function to the HTG.
//!
//! Extraction walks the entry function's statement list, grouping
//! statements into tasks according to the chosen [`Granularity`], and
//! recursing into loop bodies to build the hierarchy ("loops are enclosed
//! in an additional hierarchy level", § II-B). Dependence edges between
//! siblings are derived from transitive read/write sets; flow edges carry
//! the communication volume in bytes.

use crate::deps::{classify_loop, LoopParallelism};
use crate::{DepEdge, Granularity, Htg, Task, TaskId, TaskKind};
use argo_ir::ast::*;
use argo_ir::validate::{symbol_table, SymbolTable};
use argo_ir::visit;
use std::collections::BTreeSet;
use std::fmt;

/// Error from task extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractError {
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "extract error: {}", self.msg)
    }
}

impl std::error::Error for ExtractError {}

/// Extracts the HTG of function `func` at the given granularity.
///
/// # Errors
///
/// Returns [`ExtractError`] if `func` does not exist in `program`.
pub fn extract(
    program: &Program,
    func: &str,
    granularity: Granularity,
) -> Result<Htg, ExtractError> {
    let f = program.function(func).ok_or_else(|| ExtractError {
        msg: format!("no function `{func}`"),
    })?;
    let symbols = symbol_table(f);
    let mut ex = Extractor {
        htg: Htg {
            function: func.into(),
            ..Htg::default()
        },
        symbols,
        granularity,
        task_bodies: Vec::new(),
    };
    let top = ex.extract_level(&f.body.stmts, None);
    ex.connect_siblings(&top);
    ex.htg.top_level = top;
    ex.apply_privatization();
    Ok(ex.htg)
}

struct Extractor {
    htg: Htg,
    symbols: SymbolTable,
    granularity: Granularity,
    /// Cloned statement bodies per task, kept only for the range-based
    /// array-disjointness test during edge construction.
    task_bodies: Vec<Vec<Stmt>>,
}

impl Extractor {
    fn new_task(
        &mut self,
        name: String,
        kind: TaskKind,
        stmts: Vec<&Stmt>,
        parent: Option<TaskId>,
    ) -> TaskId {
        let id = TaskId(self.htg.tasks.len());
        let mut reads = BTreeSet::new();
        let mut writes = BTreeSet::new();
        for s in &stmts {
            let (r, w) = visit::stmt_rw(s);
            reads.extend(r);
            writes.extend(w);
        }
        let live_reads = visit::live_in_reads(stmts.iter().copied());
        self.htg.tasks.push(Task {
            id,
            name,
            kind,
            stmts: stmts.iter().map(|s| s.id).collect(),
            reads,
            live_reads,
            writes,
            children: Vec::new(),
            parent,
            access_counts: Default::default(),
        });
        self.task_bodies
            .push(stmts.iter().map(|s| (*s).clone()).collect());
        if let Some(p) = parent {
            self.htg.tasks[p.0].children.push(id);
        }
        id
    }

    /// Range of leading subscripts task `t` uses on array `v` (reads or
    /// writes).
    fn range_of(&self, t: TaskId, v: &str, writes: bool) -> crate::deps::AccessRange {
        let refs: Vec<&Stmt> = self.task_bodies[t.0].iter().collect();
        crate::deps::array_access_range(&refs, v, writes)
    }

    /// Extracts one hierarchy level from a statement list; returns sibling
    /// task ids in program order.
    fn extract_level(&mut self, stmts: &[Stmt], parent: Option<TaskId>) -> Vec<TaskId> {
        let mut siblings: Vec<TaskId> = Vec::new();
        let mut group: Vec<&Stmt> = Vec::new();

        macro_rules! flush_group {
            () => {
                if !group.is_empty() {
                    let first = group[0].id;
                    let name = if group
                        .iter()
                        .all(|s| matches!(s.kind, StmtKind::Decl { .. }))
                    {
                        format!("init@{first}")
                    } else {
                        format!("seq@{first}")
                    };
                    let taken = std::mem::take(&mut group);
                    let id = self.new_task(name, TaskKind::Simple, taken, parent);
                    siblings.push(id);
                }
            };
        }

        for s in stmts {
            let splits = match (&s.kind, self.granularity) {
                // Loops always split.
                (StmtKind::For { .. } | StmtKind::While { .. }, _) => true,
                // Calls always split (natural task parallelism).
                (StmtKind::Call { .. }, _) => true,
                // Conditionals split except at Loop granularity.
                (StmtKind::If { .. }, Granularity::Loop) => false,
                (StmtKind::If { .. }, _) => true,
                // Simple statements split only at Stmt granularity.
                (_, Granularity::Stmt) => true,
                _ => false,
            };
            if !splits {
                group.push(s);
                continue;
            }
            flush_group!();
            match &s.kind {
                StmtKind::For { var, body, .. } => {
                    let parallelism = classify_loop(s);
                    let id = self.new_task(
                        format!("for({var})@{}", s.id),
                        TaskKind::LoopNode { parallelism },
                        vec![s],
                        parent,
                    );
                    siblings.push(id);
                    let children = self.extract_level(&body.stmts, Some(id));
                    self.connect_siblings(&children);
                }
                StmtKind::While { body, .. } => {
                    let id = self.new_task(
                        format!("while@{}", s.id),
                        TaskKind::LoopNode {
                            parallelism: LoopParallelism::Sequential,
                        },
                        vec![s],
                        parent,
                    );
                    siblings.push(id);
                    let children = self.extract_level(&body.stmts, Some(id));
                    self.connect_siblings(&children);
                }
                StmtKind::Call { name, .. } => {
                    let id = self.new_task(
                        format!("call({name})@{}", s.id),
                        TaskKind::CallNode {
                            callee: name.clone(),
                        },
                        vec![s],
                        parent,
                    );
                    siblings.push(id);
                }
                StmtKind::If { .. } => {
                    let id =
                        self.new_task(format!("if@{}", s.id), TaskKind::CondNode, vec![s], parent);
                    siblings.push(id);
                }
                _ => {
                    // Stmt granularity: single-statement Simple task.
                    let id =
                        self.new_task(format!("stmt@{}", s.id), TaskKind::Simple, vec![s], parent);
                    siblings.push(id);
                }
            }
        }
        flush_group!();
        siblings
    }

    /// Adds dependence edges between ordered sibling pairs.
    ///
    /// Flow edges use the consumer's *live-in* read set, so a task that
    /// definitely overwrites a scalar before reading it (e.g. a loop
    /// re-initialising a reused induction variable) does not falsely
    /// depend on earlier writers of that scalar.
    fn connect_siblings(&mut self, siblings: &[TaskId]) {
        for (i, &a) in siblings.iter().enumerate() {
            for &b in &siblings[i + 1..] {
                let ta = &self.htg.tasks[a.0];
                let tb = &self.htg.tasks[b.0];
                let mut flow: BTreeSet<String> =
                    ta.writes.intersection(&tb.live_reads).cloned().collect();
                let mut conflicts: BTreeSet<String> = ta
                    .reads
                    .intersection(&tb.writes)
                    .chain(ta.writes.intersection(&tb.writes))
                    .cloned()
                    .collect();
                // Array refinement: accesses to provably disjoint index
                // ranges (chunked loops!) impose no dependence.
                let arrays: Vec<String> = flow
                    .iter()
                    .chain(conflicts.iter())
                    .filter(|v| self.symbols.get(*v).is_some_and(|t| t.is_array()))
                    .cloned()
                    .collect();
                for v in arrays {
                    let wr_a = self.range_of(a, &v, true);
                    let rd_a = self.range_of(a, &v, false);
                    let wr_b = self.range_of(b, &v, true);
                    let rd_b = self.range_of(b, &v, false);
                    if wr_a.disjoint(rd_b) {
                        flow.remove(&v);
                    }
                    let anti = !rd_a.disjoint(wr_b);
                    let output = !wr_a.disjoint(wr_b);
                    if !anti && !output {
                        conflicts.remove(&v);
                    }
                }
                conflicts.retain(|v| !flow.contains(v));
                if flow.is_empty() && conflicts.is_empty() {
                    continue;
                }
                let bytes: u64 = flow
                    .iter()
                    .map(|v| self.symbols.get(v).map_or(8, |t| t.size_bytes()))
                    .sum();
                self.htg.edges.push(DepEdge {
                    from: a,
                    to: b,
                    vars: flow,
                    conflicts,
                    bytes,
                    ordering_only: bytes == 0,
                });
            }
        }
    }

    /// Computes the privatizable-scalar set and removes ordering-only
    /// edges that exist solely because of conflicts on such scalars.
    ///
    /// A scalar is privatizable when it never carries a flow dependence
    /// between two tasks and it is not an array (arrays stay shared). Each
    /// core then keeps a private copy, so anti/output conflicts on it need
    /// no ordering (classical scalar privatization).
    fn apply_privatization(&mut self) {
        let mut flow_vars: BTreeSet<String> = BTreeSet::new();
        for e in &self.htg.edges {
            flow_vars.extend(e.vars.iter().cloned());
        }
        let mut privatizable: BTreeSet<String> = BTreeSet::new();
        for e in &self.htg.edges {
            for v in &e.conflicts {
                let is_array = self.symbols.get(v).is_some_and(|t| t.is_array());
                if !is_array && !flow_vars.contains(v) {
                    privatizable.insert(v.clone());
                }
            }
        }
        self.htg.edges.retain(|e| {
            if !e.vars.is_empty() {
                return true;
            }
            // Ordering-only edge: keep unless every conflict var is
            // privatizable.
            !e.conflicts.iter().all(|v| privatizable.contains(v))
        });
        self.htg.privatizable = privatizable;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::parse::parse_program;

    const PIPE: &str = r#"
        void main(real a[64], real b[64], real c[64], real d[64]) {
            int i;
            for (i = 0; i < 64; i = i + 1) { b[i] = a[i] * 2.0; }
            for (i = 0; i < 64; i = i + 1) { c[i] = a[i] + 1.0; }
            for (i = 0; i < 64; i = i + 1) { d[i] = b[i] + c[i]; }
        }
    "#;

    fn htg_of(src: &str, g: Granularity) -> Htg {
        let p = parse_program(src).unwrap();
        argo_ir::validate::validate(&p).unwrap();
        extract(&p, "main", g).unwrap()
    }

    #[test]
    fn pipeline_structure_at_loop_granularity() {
        let h = htg_of(PIPE, Granularity::Loop);
        // init (decl of i) + 3 loop tasks.
        assert_eq!(h.top_level.len(), 4);
        let loops: Vec<&Task> = h
            .top_level
            .iter()
            .map(|&t| h.task(t))
            .filter(|t| matches!(t.kind, TaskKind::LoopNode { .. }))
            .collect();
        assert_eq!(loops.len(), 3);
        // Loop 1 and 2 both feed loop 3 via b and c.
        let l3 = loops[2].id;
        let feeders: Vec<TaskId> = h
            .edges
            .iter()
            .filter(|e| e.to == l3 && !e.vars.is_empty())
            .map(|e| e.from)
            .collect();
        assert!(feeders.contains(&loops[0].id));
        assert!(feeders.contains(&loops[1].id));
    }

    #[test]
    fn flow_edges_carry_volume() {
        let h = htg_of(PIPE, Granularity::Loop);
        let e = h
            .edges
            .iter()
            .find(|e| e.vars.contains("b"))
            .expect("edge through b");
        // real[64] = 512 bytes; the edge between loop1 and loop3 carries
        // b (and possibly the scalar i).
        assert!(e.bytes >= 512);
        assert!(!e.ordering_only);
    }

    #[test]
    fn independent_loops_have_no_flow_edge() {
        let h = htg_of(PIPE, Granularity::Loop);
        let loops: Vec<TaskId> = h
            .top_level
            .iter()
            .copied()
            .filter(|&t| matches!(h.task(t).kind, TaskKind::LoopNode { .. }))
            .collect();
        // loop1 (writes b) and loop2 (writes c) share no flow data;
        // any edge between them must be ordering-only... and in fact both
        // write nothing in common and read disjoint outputs, but both
        // write `i` — which is an output dependence (ordering only).
        let between: Vec<&DepEdge> = h
            .edges
            .iter()
            .filter(|e| e.from == loops[0] && e.to == loops[1])
            .collect();
        for e in between {
            assert!(
                e.ordering_only,
                "edge between independent loops carries data: {e:?}"
            );
        }
    }

    #[test]
    fn loop_hierarchy_has_children() {
        let h = htg_of(PIPE, Granularity::Loop);
        let l = h
            .top_level
            .iter()
            .map(|&t| h.task(t))
            .find(|t| matches!(t.kind, TaskKind::LoopNode { .. }))
            .unwrap();
        assert!(!l.children.is_empty());
        for &c in &l.children {
            assert_eq!(h.task(c).parent, Some(l.id));
        }
    }

    #[test]
    fn doall_classification_is_attached() {
        let h = htg_of(PIPE, Granularity::Loop);
        for &t in &h.top_level {
            if let TaskKind::LoopNode { parallelism } = &h.task(t).kind {
                assert_eq!(*parallelism, LoopParallelism::Doall);
            }
        }
    }

    #[test]
    fn stmt_granularity_is_finer_than_block() {
        let src = r#"
            void main(real a[8]) {
                real x; real y; real z;
                x = a[0] + 1.0;
                y = x * 2.0;
                z = y - 3.0;
                a[1] = z;
            }
        "#;
        let fine = htg_of(src, Granularity::Stmt);
        let coarse = htg_of(src, Granularity::Block);
        assert!(fine.top_level.len() > coarse.top_level.len());
        // Block granularity groups the whole straight-line body.
        assert_eq!(coarse.top_level.len(), 1);
    }

    #[test]
    fn chain_dependences_at_stmt_granularity() {
        let src = r#"
            void main(real a[8]) {
                real x; real y;
                x = a[0] + 1.0;
                y = x * 2.0;
                a[1] = y;
            }
        "#;
        let h = htg_of(src, Granularity::Stmt);
        // x flows into y's task, y flows into the store task.
        assert!(h.edges.iter().any(|e| e.vars.contains("x")));
        assert!(h.edges.iter().any(|e| e.vars.contains("y")));
        assert!(h.edges_are_acyclic());
    }

    #[test]
    fn calls_become_call_nodes() {
        let src = r#"
            void stage(real buf[16]) { int i;
                for (i=0;i<16;i=i+1) { buf[i] = buf[i] + 1.0; } }
            void main(real buf[16]) {
                stage(buf);
                stage(buf);
            }
        "#;
        let h = htg_of(src, Granularity::Loop);
        let calls: Vec<&Task> = h
            .tasks
            .iter()
            .filter(|t| matches!(t.kind, TaskKind::CallNode { .. }))
            .collect();
        assert_eq!(calls.len(), 2);
        // Second call depends on the first (both write buf).
        assert!(h
            .edges
            .iter()
            .any(|e| e.from == calls[0].id && e.to == calls[1].id));
    }

    #[test]
    fn conditional_becomes_cond_node_at_fine_granularity() {
        let src = r#"
            void main(real a[8], int k) {
                real x; x = 0.0;
                if (k > 0) { x = a[0]; } else { x = a[1]; }
                a[2] = x;
            }
        "#;
        let h = htg_of(src, Granularity::Block);
        assert!(h.tasks.iter().any(|t| matches!(t.kind, TaskKind::CondNode)));
    }

    #[test]
    fn unknown_function_errors() {
        let p = parse_program("void main() { }").unwrap();
        assert!(extract(&p, "nope", Granularity::Loop).is_err());
    }

    #[test]
    fn edges_always_respect_program_order() {
        let h = htg_of(PIPE, Granularity::Stmt);
        assert!(h.edges_are_acyclic());
    }

    #[test]
    fn dot_output_mentions_all_top_tasks() {
        let h = htg_of(PIPE, Granularity::Loop);
        let dot = h.to_dot();
        for &t in &h.top_level {
            assert!(dot.contains(&h.task(t).name));
        }
    }
}
