//! # argo-htg — Hierarchical Task Graph
//!
//! "A task extraction stage is applied to the program, from which we obtain
//! a Hierarchical Task Graph (HTG). In a HTG, loops are enclosed in an
//! additional hierarchy level, resulting in a hierarchy of acyclic task
//! graphs. Task dependencies embed information on the variables and the
//! buffers that need to be communicated between tasks, while task nodes
//! include additional information on possible shared resource accesses
//! (list of shared resources, and worst case number of accesses)."
//! (paper § II-B)
//!
//! This crate implements exactly that object:
//!
//! * [`extract`] builds the HTG from a mini-C function at a configurable
//!   [`Granularity`] — the "very fine grain task decomposition" of § III-C;
//! * [`deps`] computes the dependence edges (scalar def-use plus
//!   conservative array dependences) and classifies loops as DOALL /
//!   reduction / sequential via an affine-subscript test;
//! * [`accesses`] annotates every task with its worst-case shared-resource
//!   access counts.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//!     void main(real a[64], real b[64], real c[64]) {
//!         int i;
//!         for (i = 0; i < 64; i = i + 1) { b[i] = a[i] * 2.0; }
//!         for (i = 0; i < 64; i = i + 1) { c[i] = b[i] + 1.0; }
//!     }
//! "#;
//! let program = argo_ir::parse::parse_program(src)?;
//! let htg = argo_htg::extract::extract(&program, "main", argo_htg::Granularity::Loop)?;
//! // Two top-level loop tasks with a flow dependence through `b`.
//! assert!(htg.edges.iter().any(|e| e.vars.contains("b")));
//! # Ok(()) }
//! ```

pub mod accesses;
pub mod deps;
pub mod extract;

use argo_ir::StmtId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a task within an [`Htg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Task granularity of the extraction — the trade-off § III-C calls out:
/// finer grain exposes more parallelism but blows up the scheduling
/// problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One task per statement.
    Stmt,
    /// Maximal straight-line statement groups become one task; control
    /// structures split.
    Block,
    /// Only loops and calls split; everything between them is grouped.
    Loop,
}

/// What a task contains.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// A group of simple statements (ids in program order).
    Simple,
    /// A whole loop; its body forms a child hierarchy level.
    LoopNode {
        /// Classification from the dependence analysis.
        parallelism: deps::LoopParallelism,
    },
    /// A conditional; both branches belong to the task.
    CondNode,
    /// A procedure call in statement position.
    CallNode {
        /// Callee name.
        callee: String,
    },
}

/// One node of the hierarchical task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Task id (== index in [`Htg::tasks`]).
    pub id: TaskId,
    /// Human-readable name (`"for@s7"` style).
    pub name: String,
    /// Payload kind.
    pub kind: TaskKind,
    /// Statement ids covered by this task (for loop/cond nodes: the
    /// compound statement itself; children carry the body).
    pub stmts: Vec<StmtId>,
    /// Variables read (transitively, whole subtree, flow-insensitive).
    pub reads: BTreeSet<String>,
    /// Variables that may be read *before* the task writes them — the
    /// flow-sensitive live-in set used for true-dependence edges.
    pub live_reads: BTreeSet<String>,
    /// Variables written (transitively, whole subtree).
    pub writes: BTreeSet<String>,
    /// Child tasks (one hierarchy level down, e.g. a loop body).
    pub children: Vec<TaskId>,
    /// Parent task, `None` for top-level tasks.
    pub parent: Option<TaskId>,
    /// Worst-case number of accesses per shared variable, filled by
    /// [`accesses::annotate`]. Keys are variable names; this is the
    /// "list of shared resources, and worst case number of accesses" of
    /// § II-B.
    pub access_counts: BTreeMap<String, u64>,
}

/// A dependence edge between two sibling tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct DepEdge {
    /// Producer (earlier in program order).
    pub from: TaskId,
    /// Consumer.
    pub to: TaskId,
    /// Variables carrying a true (flow) dependence.
    pub vars: BTreeSet<String>,
    /// Variables causing only anti/output conflicts on this edge.
    pub conflicts: BTreeSet<String>,
    /// Communication volume in bytes if the tasks end up on different
    /// cores (sum of flow-dependent variable footprints).
    pub bytes: u64,
    /// `true` if the edge only exists because of an anti/output dependence
    /// (ordering required, but no data flows).
    pub ordering_only: bool,
}

/// The hierarchical task graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Htg {
    /// All tasks (every hierarchy level).
    pub tasks: Vec<Task>,
    /// Dependence edges between *sibling* tasks (same hierarchy level).
    pub edges: Vec<DepEdge>,
    /// Top-level task ids, in program order.
    pub top_level: Vec<TaskId>,
    /// Name of the function the HTG was extracted from.
    pub function: String,
    /// Scalars that never carry a flow dependence between tasks: each task
    /// (core) may keep a private copy, so pure anti/output conflicts on
    /// them impose no ordering. The extractor drops such edges; the
    /// parallel-model construction must privatise these variables.
    pub privatizable: BTreeSet<String>,
}

impl Htg {
    /// Looks up a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Mutable task lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task_mut(&mut self, id: TaskId) -> &mut Task {
        &mut self.tasks[id.0]
    }

    /// Number of tasks across all hierarchy levels.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Edges whose endpoints are both top-level tasks.
    pub fn top_level_edges(&self) -> impl Iterator<Item = &DepEdge> {
        let top: BTreeSet<TaskId> = self.top_level.iter().copied().collect();
        self.edges
            .iter()
            .filter(move |e| top.contains(&e.from) && top.contains(&e.to))
    }

    /// Direct predecessors of `id` among its siblings.
    pub fn preds(&self, id: TaskId) -> Vec<TaskId> {
        self.edges
            .iter()
            .filter(|e| e.to == id)
            .map(|e| e.from)
            .collect()
    }

    /// Direct successors of `id` among its siblings.
    pub fn succs(&self, id: TaskId) -> Vec<TaskId> {
        self.edges
            .iter()
            .filter(|e| e.from == id)
            .map(|e| e.to)
            .collect()
    }

    /// Checks that sibling edges form a DAG consistent with program order
    /// (`from < to` in extraction ordering). Used by property tests.
    pub fn edges_are_acyclic(&self) -> bool {
        // Edges always point from an earlier-extracted task to a later
        // one, so id order is a topological order.
        self.edges.iter().all(|e| e.from.0 < e.to.0)
    }

    /// A GraphViz dot rendering of the top level (debugging aid).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph htg {\n");
        for &t in &self.top_level {
            let task = self.task(t);
            let _ = writeln!(s, "  {} [label=\"{}\"];", t.0, task.name);
        }
        for e in self.top_level_edges() {
            let style = if e.ordering_only {
                " [style=dashed]"
            } else {
                ""
            };
            let _ = writeln!(s, "  {} -> {}{};", e.from.0, e.to.0, style);
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(4).to_string(), "t4");
    }

    #[test]
    fn empty_htg_properties() {
        let h = Htg::default();
        assert!(h.is_empty());
        assert!(h.edges_are_acyclic());
        assert_eq!(h.top_level_edges().count(), 0);
    }
}
