//! Dependence analysis: sibling-task edges and loop parallelism.
//!
//! Two analyses live here:
//!
//! 1. **Task-level dependences** — between sibling tasks, using transitively
//!    collected read/write sets. Array variables are treated as single
//!    cells: any write to `a[i]` conflicts with any access of `a[j]`,
//!    regardless of the subscripts. That over-approximation is the
//!    *sound* direction for this pass — it can only add precedence
//!    edges, never miss one — at the cost of serializing tasks that
//!    touch provably disjoint slices. Consumers that need the finer
//!    answer (the `argo-verify` race detector refining whether an
//!    *unordered* pair can really collide) re-analyze subscripts with
//!    [`array_access_range`] and [`AccessRange::disjoint`]; the edge
//!    construction here deliberately does not, because a bug in the
//!    interval reasoning would silently drop ordering constraints
//!    (exactly the class of bug the PR 1 decl-before-use fix patched,
//!    where a whole-array declaration had to count as a write).
//! 2. **Loop parallelism classification** — the affine-subscript DOALL test
//!    plus reduction recognition. This is what lets the transform stage
//!    chunk a loop into parallel tasks, the core enabler of the paper's
//!    "predictability oriented task parallelism extraction through loop
//!    transformations" (§ II-B).

use argo_ir::ast::*;
use argo_ir::visit;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Parallelism classification of a `for` loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopParallelism {
    /// Iterations are independent: the loop can be chunked across cores.
    Doall,
    /// Iterations only interact through commutative/associative updates of
    /// the named scalars; parallelizable with a final combine step.
    Reduction(Vec<String>),
    /// Loop-carried dependences force sequential execution.
    Sequential,
}

impl fmt::Display for LoopParallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopParallelism::Doall => write!(f, "doall"),
            LoopParallelism::Reduction(vars) => write!(f, "reduction({})", vars.join(",")),
            LoopParallelism::Sequential => write!(f, "sequential"),
        }
    }
}

impl LoopParallelism {
    /// Returns `true` if the loop can be split across cores (DOALL or
    /// reduction).
    pub fn is_parallelizable(&self) -> bool {
        !matches!(self, LoopParallelism::Sequential)
    }
}

/// Decomposes `e` as `coef * var + rest`; returns the constant `coef` if
/// the decomposition exists, `rest` does not mention `var`, and `coef` is
/// statically known. `Some(0)` means `e` does not mention `var` at all.
pub fn affine_coef(e: &Expr, var: &str) -> Option<i64> {
    match e {
        Expr::IntLit(_) => Some(0),
        Expr::Var(n) => Some(if n == var { 1 } else { 0 }),
        Expr::Binary { op, lhs, rhs } => {
            let l = affine_coef(lhs, var)?;
            let r = affine_coef(rhs, var)?;
            match op {
                BinOp::Add => Some(l + r),
                BinOp::Sub => Some(l - r),
                BinOp::Mul => {
                    // Affine only if at most one side mentions `var` and
                    // the other side is a constant.
                    match (l, r) {
                        (0, 0) => Some(0),
                        (0, c) => lhs.as_int_const().map(|k| k * c),
                        (c, 0) => rhs.as_int_const().map(|k| k * c),
                        _ => None, // var * var — not affine
                    }
                }
                _ => {
                    if l == 0 && r == 0 {
                        Some(0)
                    } else {
                        None
                    }
                }
            }
        }
        Expr::Unary { op: UnOp::Neg, arg } => affine_coef(arg, var).map(|c| -c),
        Expr::Cast { arg, .. } => affine_coef(arg, var),
        // Calls, array reads: treat as non-affine unless they avoid `var`.
        _ => {
            let mut mentions = false;
            visit::walk_expr(e, &mut |sub| {
                if let Expr::Var(n) = sub {
                    if n == var {
                        mentions = true;
                    }
                }
            });
            if mentions {
                None
            } else {
                Some(0)
            }
        }
    }
}

/// Classifies the parallelism of a `for` loop statement.
///
/// The test is deliberately conservative (syntactic, single-subscript
/// disjointness): a loop is DOALL if
///
/// * every array written in the body is written only at subscripts whose
///   leading dimension is affine in the induction variable with a nonzero
///   coefficient (distinct iterations touch distinct elements), and every
///   read of that same array uses a subscript with the *same* leading
///   affine form;
/// * every scalar written in the body is declared inside the body (purely
///   iteration-local);
/// * all calls are scalar-only (mini-C has no globals, so such calls are
///   pure).
///
/// Scalars violating the second rule but only updated as `s = s ⊕ expr`
/// with `⊕ ∈ {+, *}` or `s = fmin/fmax/imin/imax(s, expr)` where `expr`
/// does not read `s` make the loop a [`LoopParallelism::Reduction`].
///
/// # Panics
///
/// Panics if `stmt` is not a `for` loop.
pub fn classify_loop(stmt: &Stmt) -> LoopParallelism {
    let StmtKind::For { var, body, .. } = &stmt.kind else {
        panic!("classify_loop requires a for statement");
    };
    classify_for(var, body)
}

fn classify_for(ivar: &str, body: &Block) -> LoopParallelism {
    // Collect all statements of the body subtree.
    let mut stmts: Vec<&Stmt> = Vec::new();
    visit::walk_stmts(body, &mut |s| stmts.push(s));

    // Locally declared scalars are iteration-private.
    let mut local: BTreeSet<&str> = BTreeSet::new();
    for s in &stmts {
        if let StmtKind::Decl { name, .. } = &s.kind {
            local.insert(name);
        }
    }

    // Inner loop induction variables are also iteration-local *if* they
    // are initialised by their own loop header (they always are).
    for s in &stmts {
        if let StmtKind::For { var, .. } = &s.kind {
            local.insert(var);
        }
    }

    let mut reduction_vars: BTreeSet<String> = BTreeSet::new();

    for s in &stmts {
        match &s.kind {
            StmtKind::Decl { .. } => {}
            StmtKind::Assign { target, value } => match target {
                LValue::Var(n) => {
                    if local.contains(n.as_str()) {
                        continue;
                    }
                    if let Some(op_ok) = reduction_pattern(n, value) {
                        if op_ok {
                            reduction_vars.insert(n.clone());
                            continue;
                        }
                    }
                    return LoopParallelism::Sequential;
                }
                LValue::ArrayElem { array, indices } => {
                    // Leading subscript must be affine in ivar with
                    // nonzero coefficient.
                    let Some(c) = affine_coef(&indices[0], ivar) else {
                        return LoopParallelism::Sequential;
                    };
                    if c == 0 {
                        return LoopParallelism::Sequential;
                    }
                    // Remaining subscripts must not depend on anything
                    // written by other iterations: affine check suffices
                    // because iteration-local vars are fine.
                    let _ = array;
                }
            },
            StmtKind::If { .. } | StmtKind::For { .. } => {}
            StmtKind::While { .. } => {
                // Bounded while inside: fine for parallelism as long as
                // its writes pass the rules above (already walked).
            }
            StmtKind::Call { args, .. } => {
                // Calls with array arguments may write those arrays at
                // unknown subscripts.
                if args.iter().any(|a| matches!(a, Expr::Var(_))) {
                    // Scalar `Expr::Var` args are indistinguishable from
                    // array vars here without types; be conservative only
                    // for names that are *written* according to stmt_rw.
                    let (_, w) = visit::stmt_rw(s);
                    let nonlocal_writes: Vec<&String> =
                        w.iter().filter(|n| !local.contains(n.as_str())).collect();
                    if !nonlocal_writes.is_empty() {
                        return LoopParallelism::Sequential;
                    }
                }
            }
            StmtKind::Return { .. } => return LoopParallelism::Sequential,
        }
    }

    // Cross-check reads of written arrays: every read of an array that is
    // also written must use an identical leading subscript expression,
    // otherwise iteration i may read an element written by iteration j.
    let mut written_arrays: BTreeSet<&str> = BTreeSet::new();
    let mut write_subscripts: Vec<(&str, &Expr)> = Vec::new();
    for s in &stmts {
        if let StmtKind::Assign {
            target: LValue::ArrayElem { array, indices },
            ..
        } = &s.kind
        {
            written_arrays.insert(array);
            write_subscripts.push((array, &indices[0]));
        }
    }
    let mut conflict = false;
    for s in &stmts {
        visit::walk_exprs(s, &mut |e| {
            if let Expr::ArrayElem { array, indices } = e {
                if written_arrays.contains(array.as_str()) {
                    let same_form = write_subscripts
                        .iter()
                        .filter(|(a, _)| a == array)
                        .all(|(_, w)| *w == &indices[0]);
                    if !same_form {
                        conflict = true;
                    }
                }
            }
        });
    }
    if conflict {
        return LoopParallelism::Sequential;
    }

    // A reduction variable must not be read anywhere except inside its own
    // reduction updates — `b[i] = s; s = s + a[i]` exposes intermediate
    // values of `s` and is NOT parallelizable. Each statement's *own*
    // expressions are checked (nested statements are visited separately
    // because `stmts` is the flattened subtree).
    for r in &reduction_vars {
        for s in &stmts {
            if matches!(&s.kind, StmtKind::Assign { target: LValue::Var(n), .. } if n == r) {
                continue; // the update itself may read r
            }
            let reads_r = own_exprs(s)
                .iter()
                .any(|e| visit::expr_reads(e).contains(r));
            if reads_r {
                return LoopParallelism::Sequential;
            }
        }
    }

    if reduction_vars.is_empty() {
        LoopParallelism::Doall
    } else {
        LoopParallelism::Reduction(reduction_vars.into_iter().collect())
    }
}

/// Range of leading-dimension indices a task may touch on one array.
///
/// Used for chunk disjointness: two tasks writing `b[0..64)` and
/// `b[64..128)` do **not** conflict, which is what makes chunked loops
/// schedulable in parallel. If the leading subscript cannot be bounded
/// statically the range is [`AccessRange::Unknown`] (conservative
/// overlap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessRange {
    /// The task never accesses the array (in the queried mode).
    None,
    /// All leading subscripts lie in `[lo, hi]` (inclusive).
    Range(i64, i64),
    /// Could not be bounded.
    Unknown,
}

impl AccessRange {
    fn join(self, other: AccessRange) -> AccessRange {
        match (self, other) {
            (AccessRange::None, x) | (x, AccessRange::None) => x,
            (AccessRange::Range(a, b), AccessRange::Range(c, d)) => {
                AccessRange::Range(a.min(c), b.max(d))
            }
            _ => AccessRange::Unknown,
        }
    }

    /// Returns `true` when the two ranges provably cannot touch the same
    /// element.
    pub fn disjoint(self, other: AccessRange) -> bool {
        match (self, other) {
            (AccessRange::None, _) | (_, AccessRange::None) => true,
            (AccessRange::Range(a, b), AccessRange::Range(c, d)) => b < c || d < a,
            _ => false,
        }
    }
}

/// Computes the leading-subscript range with which `stmts` read (or
/// write, per `want_writes`) array `array`. Loop variables with literal
/// bounds contribute their iteration interval; anything else makes the
/// result [`AccessRange::Unknown`]. Calls passing the array are treated
/// as unknown full-array accesses.
pub fn array_access_range(stmts: &[&Stmt], array: &str, want_writes: bool) -> AccessRange {
    let mut env: BTreeMap<String, (i64, i64)> = BTreeMap::new();
    let mut out = AccessRange::None;
    for s in stmts {
        range_stmt(s, array, want_writes, &mut env, &mut out);
    }
    out
}

fn range_stmt(
    s: &Stmt,
    array: &str,
    want_writes: bool,
    env: &mut BTreeMap<String, (i64, i64)>,
    out: &mut AccessRange,
) {
    // Reads inside any expression of this statement.
    if !want_writes {
        for e in own_exprs(s) {
            range_expr_reads(e, array, env, out);
        }
    } else if let StmtKind::Assign {
        target: LValue::ArrayElem { array: a, indices },
        ..
    } = &s.kind
    {
        if a == array {
            let r = eval_idx_interval(&indices[0], env)
                .map_or(AccessRange::Unknown, |(lo, hi)| AccessRange::Range(lo, hi));
            *out = out.join(r);
        }
    } else if let StmtKind::Decl { name, .. } = &s.kind {
        // Declaring an array zero-initialises every element: a whole-array
        // write. Without this, a task holding the declaration looks
        // range-disjoint from every user and the init task can be
        // scheduled after its readers/writers.
        if name == array {
            *out = AccessRange::Unknown;
        }
    }
    match &s.kind {
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            for st in then_blk.stmts.iter().chain(&else_blk.stmts) {
                range_stmt(st, array, want_writes, env, out);
            }
        }
        StmtKind::For {
            var, lo, hi, body, ..
        } => {
            let bounds = match (eval_idx_interval(lo, env), eval_idx_interval(hi, env)) {
                (Some((l, _)), Some((_, h))) if h > l => Some((l, h - 1)),
                (Some((l, _)), Some((_, h))) if h <= l => Some((l, l)), // empty-ish
                _ => None,
            };
            match bounds {
                Some(b) => {
                    let old = env.insert(var.clone(), b);
                    for st in &body.stmts {
                        range_stmt(st, array, want_writes, env, out);
                    }
                    match old {
                        Some(o) => {
                            env.insert(var.clone(), o);
                        }
                        None => {
                            env.remove(var);
                        }
                    }
                }
                None => {
                    // Unbounded loop: any access inside is unknown.
                    let mut probe = AccessRange::None;
                    let mut e2 = BTreeMap::new();
                    for st in &body.stmts {
                        range_stmt(st, array, want_writes, &mut e2, &mut probe);
                    }
                    if probe != AccessRange::None {
                        *out = AccessRange::Unknown;
                    }
                }
            }
        }
        StmtKind::While { body, .. } => {
            for st in &body.stmts {
                range_stmt(st, array, want_writes, env, out);
            }
        }
        StmtKind::Call { args, .. }
            // Array passed to a call: the callee may touch anything.
            if args.iter().any(|a| matches!(a, Expr::Var(n) if n == array)) => {
                *out = AccessRange::Unknown;
            }
        _ => {}
    }
}

fn range_expr_reads(
    e: &Expr,
    array: &str,
    env: &BTreeMap<String, (i64, i64)>,
    out: &mut AccessRange,
) {
    visit::walk_expr(e, &mut |sub| {
        if let Expr::ArrayElem { array: a, indices } = sub {
            if a == array {
                let r = eval_idx_interval(&indices[0], env)
                    .map_or(AccessRange::Unknown, |(lo, hi)| AccessRange::Range(lo, hi));
                *out = out.join(r);
            }
        }
    });
}

/// Interval evaluation of an index expression over literal loop-variable
/// ranges. Returns inclusive `(lo, hi)`.
fn eval_idx_interval(e: &Expr, env: &BTreeMap<String, (i64, i64)>) -> Option<(i64, i64)> {
    match e {
        Expr::IntLit(v) => Some((*v, *v)),
        Expr::Var(n) => env.get(n).copied(),
        Expr::Binary { op, lhs, rhs } => {
            let (a, b) = eval_idx_interval(lhs, env)?;
            let (c, d) = eval_idx_interval(rhs, env)?;
            match op {
                BinOp::Add => Some((a.checked_add(c)?, b.checked_add(d)?)),
                BinOp::Sub => Some((a.checked_sub(d)?, b.checked_sub(c)?)),
                BinOp::Mul => {
                    let p = [
                        a.checked_mul(c)?,
                        a.checked_mul(d)?,
                        b.checked_mul(c)?,
                        b.checked_mul(d)?,
                    ];
                    Some((*p.iter().min()?, *p.iter().max()?))
                }
                BinOp::Div if c == d && c > 0 => {
                    let p = [a / c, b / c];
                    Some((*p.iter().min()?, *p.iter().max()?))
                }
                _ => None,
            }
        }
        Expr::Unary { op: UnOp::Neg, arg } => {
            let (a, b) = eval_idx_interval(arg, env)?;
            Some((-b, -a))
        }
        _ => None,
    }
}

/// The expressions evaluated by a statement itself (excluding nested
/// statements' expressions).
fn own_exprs(s: &Stmt) -> Vec<&Expr> {
    match &s.kind {
        StmtKind::Decl { init, .. } => init.iter().collect(),
        StmtKind::Assign { target, value } => {
            let mut v = vec![value];
            if let LValue::ArrayElem { indices, .. } = target {
                v.extend(indices.iter());
            }
            v
        }
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => vec![cond],
        StmtKind::For { lo, hi, .. } => vec![lo, hi],
        StmtKind::Call { args, .. } => args.iter().collect(),
        StmtKind::Return { value } => value.iter().collect(),
    }
}

/// Checks whether `value` is a reduction update of scalar `n`:
/// `n + e`, `e + n`, `n * e`, `e * n`, or `fmin/fmax/imin/imax(n, e)`,
/// where `e` does not read `n`. Returns `Some(true)` for a valid
/// reduction, `Some(false)` for an update that reads `n` otherwise,
/// `None` when `value` does not read `n` at all (plain overwrite — still
/// a loop-carried output dependence, so not parallel-safe unless local).
fn reduction_pattern(n: &str, value: &Expr) -> Option<bool> {
    let reads_n = |e: &Expr| visit::expr_reads(e).contains(n);
    if !reads_n(value) {
        return Some(false); // overwrite of non-local scalar: output dep
    }
    match value {
        Expr::Binary {
            op: BinOp::Add | BinOp::Mul,
            lhs,
            rhs,
        } => {
            if matches!(&**lhs, Expr::Var(v) if v == n) && !reads_n(rhs) {
                return Some(true);
            }
            if matches!(&**rhs, Expr::Var(v) if v == n) && !reads_n(lhs) {
                return Some(true);
            }
            Some(false)
        }
        Expr::Call { name, args }
            if matches!(name.as_str(), "fmin" | "fmax" | "imin" | "imax") && args.len() == 2 =>
        {
            let a0_is_n = matches!(&args[0], Expr::Var(v) if v == n);
            let a1_is_n = matches!(&args[1], Expr::Var(v) if v == n);
            if a0_is_n && !reads_n(&args[1]) {
                return Some(true);
            }
            if a1_is_n && !reads_n(&args[0]) {
                return Some(true);
            }
            Some(false)
        }
        _ => Some(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::parse::parse_program;

    fn classify(src: &str) -> LoopParallelism {
        let p = parse_program(src).unwrap();
        let loop_stmt = p
            .functions
            .iter()
            .flat_map(|f| f.body.stmts.iter())
            .find(|s| matches!(s.kind, StmtKind::For { .. }))
            .expect("no for loop in source");
        classify_loop(loop_stmt)
    }

    #[test]
    fn disjoint_adjacent_ranges_do_not_touch() {
        // Inclusive bounds: [0,63] and [64,127] share no element, but
        // [0,64] and [64,127] share element 64.
        assert!(AccessRange::Range(0, 63).disjoint(AccessRange::Range(64, 127)));
        assert!(AccessRange::Range(64, 127).disjoint(AccessRange::Range(0, 63)));
        assert!(!AccessRange::Range(0, 64).disjoint(AccessRange::Range(64, 127)));
    }

    #[test]
    fn disjoint_overlapping_and_nested_ranges_conflict() {
        assert!(!AccessRange::Range(0, 10).disjoint(AccessRange::Range(5, 15)));
        assert!(!AccessRange::Range(0, 100).disjoint(AccessRange::Range(40, 60)));
        // A single element overlapping itself.
        assert!(!AccessRange::Range(7, 7).disjoint(AccessRange::Range(7, 7)));
        assert!(AccessRange::Range(7, 7).disjoint(AccessRange::Range(8, 8)));
    }

    #[test]
    fn disjoint_unknown_is_never_disjoint_except_from_none() {
        // Unknown must stay conservative against everything that might
        // access the array...
        assert!(!AccessRange::Unknown.disjoint(AccessRange::Range(0, 1)));
        assert!(!AccessRange::Range(0, 1).disjoint(AccessRange::Unknown));
        assert!(!AccessRange::Unknown.disjoint(AccessRange::Unknown));
        // ...but a task that provably never touches the array is
        // disjoint from anything, Unknown included.
        assert!(AccessRange::None.disjoint(AccessRange::Unknown));
        assert!(AccessRange::Unknown.disjoint(AccessRange::None));
        assert!(AccessRange::None.disjoint(AccessRange::None));
        assert!(AccessRange::None.disjoint(AccessRange::Range(0, 5)));
    }

    #[test]
    fn map_loop_is_doall() {
        let c = classify(
            "void f(real a[64], real b[64]) { int i; \
             for (i=0;i<64;i=i+1) { b[i] = a[i] * 2.0; } }",
        );
        assert_eq!(c, LoopParallelism::Doall);
    }

    #[test]
    fn strided_write_is_doall() {
        let c = classify(
            "void f(real b[64]) { int i; \
             for (i=0;i<32;i=i+1) { b[2*i] = 1.0; } }",
        );
        assert_eq!(c, LoopParallelism::Doall);
    }

    #[test]
    fn stencil_read_is_sequential() {
        // Reads b[i-1] while writing b[i]: loop-carried flow dependence.
        let c = classify(
            "void f(real b[64]) { int i; \
             for (i=1;i<64;i=i+1) { b[i] = b[i-1] + 1.0; } }",
        );
        assert_eq!(c, LoopParallelism::Sequential);
    }

    #[test]
    fn reading_other_array_with_offset_is_doall() {
        // Reads a[i+1] but only writes b[i]; a is never written.
        let c = classify(
            "void f(real a[65], real b[64]) { int i; \
             for (i=0;i<64;i=i+1) { b[i] = a[i+1] - a[i]; } }",
        );
        assert_eq!(c, LoopParallelism::Doall);
    }

    #[test]
    fn sum_is_reduction() {
        let c = classify(
            "real f(real a[64]) { real s; int i; s = 0.0; \
             for (i=0;i<64;i=i+1) { s = s + a[i]; } return s; }",
        );
        assert_eq!(c, LoopParallelism::Reduction(vec!["s".into()]));
    }

    #[test]
    fn max_via_intrinsic_is_reduction() {
        let c = classify(
            "real f(real a[64]) { real m; int i; m = 0.0; \
             for (i=0;i<64;i=i+1) { m = fmax(m, a[i]); } return m; }",
        );
        assert_eq!(c, LoopParallelism::Reduction(vec!["m".into()]));
    }

    #[test]
    fn nonassociative_update_is_sequential() {
        let c = classify(
            "real f(real a[64]) { real s; int i; s = 0.0; \
             for (i=0;i<64;i=i+1) { s = s / 2.0 + a[i]; } return s; }",
        );
        assert_eq!(c, LoopParallelism::Sequential);
    }

    #[test]
    fn scalar_overwrite_is_sequential_unless_local() {
        let seq = classify(
            "void f(real a[64], real out[64]) { real t; int i; t = 0.0; \
             for (i=0;i<64;i=i+1) { t = a[i]; out[i] = t; } }",
        );
        assert_eq!(seq, LoopParallelism::Sequential);
        let par = classify(
            "void f(real a[64], real out[64]) { int i; \
             for (i=0;i<64;i=i+1) { real t; t = a[i]; out[i] = t; } }",
        );
        assert_eq!(par, LoopParallelism::Doall);
    }

    #[test]
    fn constant_subscript_write_is_sequential() {
        let c = classify(
            "void f(real b[64]) { int i; \
             for (i=0;i<64;i=i+1) { b[0] = b[0] + 1.0; } }",
        );
        assert_eq!(c, LoopParallelism::Sequential);
    }

    #[test]
    fn nested_loop_inner_var_is_private() {
        let c = classify(
            "void f(real a[8][8], real b[8]) { int i; int j; \
             for (i=0;i<8;i=i+1) { real s; s = 0.0; \
               for (j=0;j<8;j=j+1) { s = s + a[i][j]; } \
               b[i] = s; } }",
        );
        // `j` and `s` are iteration-local/loop-local; outer loop is DOALL.
        // (s is declared inside the outer body.)
        assert_eq!(c, LoopParallelism::Doall);
    }

    #[test]
    fn call_writing_array_is_sequential() {
        let c = classify(
            "void g(real buf[64]) { buf[0] = 1.0; } \
             void f(real buf[64]) { int i; \
             for (i=0;i<4;i=i+1) { g(buf); } }",
        );
        assert_eq!(c, LoopParallelism::Sequential);
    }

    /// Regression: a task that only *declares* a local array must precede
    /// every task that reads or writes it. The range refinement used to
    /// see the declaration as a zero-range write and drop the edge, which
    /// let schedulers run users before the allocation (observed via the
    /// model frontend, whose lowering declares internal buffers locally).
    #[test]
    fn array_decl_orders_before_users() {
        let src = r#"
            void main(real a[16], real out[16]) {
                real buf[16];
                int i;
                for (i = 0; i < 16; i = i + 1) { buf[i] = a[i] * 2.0; }
                for (i = 0; i < 16; i = i + 1) { out[i] = buf[i] + 1.0; }
            }
        "#;
        let p = parse_program(src).unwrap();
        let htg = crate::extract::extract(&p, "main", crate::Granularity::Loop).unwrap();
        let decl_task = htg
            .top_level
            .iter()
            .position(|&t| htg.task(t).name.starts_with("init"))
            .expect("init task");
        let writer = htg
            .top_level
            .iter()
            .position(|&t| {
                htg.task(t).writes.contains("buf") && !htg.task(t).name.starts_with("init")
            })
            .expect("writer task");
        let has_edge = |from: usize, to: usize| {
            htg.edges
                .iter()
                .any(|e| e.from == htg.top_level[from] && e.to == htg.top_level[to])
        };
        assert!(
            has_edge(decl_task, writer),
            "declaration must precede the first writer"
        );
    }

    #[test]
    fn affine_coef_basics() {
        use argo_ir::parse::parse_expr;
        let e = parse_expr("2*i + 3").unwrap();
        assert_eq!(affine_coef(&e, "i"), Some(2));
        let e = parse_expr("i").unwrap();
        assert_eq!(affine_coef(&e, "i"), Some(1));
        let e = parse_expr("j + 7").unwrap();
        assert_eq!(affine_coef(&e, "i"), Some(0));
        let e = parse_expr("i*i").unwrap();
        assert_eq!(affine_coef(&e, "i"), None);
        let e = parse_expr("n - i").unwrap();
        assert_eq!(affine_coef(&e, "i"), Some(-1));
        let e = parse_expr("(i + 1) * 4").unwrap();
        assert_eq!(affine_coef(&e, "i"), Some(4));
    }
}
