//! Worst-case shared-resource access counting.
//!
//! Every HTG task node carries "additional information on possible shared
//! resource accesses (list of shared resources, and worst case number of
//! accesses)" (§ II-B). This pass computes, per task and per variable, an
//! upper bound on the number of accesses, by walking the task's statements
//! and multiplying by enclosing loop bounds. Conditionals contribute the
//! per-variable *maximum* over their branches.
//!
//! Loop bounds come from three sources, in priority order: the caller-
//! provided bound map (filled by the value analysis in `argo-wcet`),
//! constant trip counts, and a configurable default for loops neither
//! source can bound.

use crate::{Htg, TaskId};
use argo_ir::ast::*;
use argo_ir::visit;
use argo_ir::StmtId;
use std::collections::BTreeMap;

/// Per-variable access counts.
pub type AccessCounts = BTreeMap<String, u64>;

/// Context for the counting pass.
#[derive(Debug, Clone, Default)]
pub struct AnnotateCtx {
    /// Loop bounds by loop statement id (from the value analysis).
    pub bounds: BTreeMap<StmtId, u64>,
    /// Fallback bound for loops with no other source (defaults to 1 via
    /// `Default`; set this explicitly for meaningful results on
    /// non-constant loops).
    pub default_bound: u64,
}

impl AnnotateCtx {
    /// Creates a context with the given fallback bound.
    pub fn with_default_bound(default_bound: u64) -> AnnotateCtx {
        AnnotateCtx {
            bounds: BTreeMap::new(),
            default_bound,
        }
    }
}

/// Annotates every task of `htg` with its worst-case access counts.
pub fn annotate(htg: &mut Htg, program: &Program, ctx: &AnnotateCtx) {
    let f = program
        .function(&htg.function)
        .expect("HTG function must exist in program");
    // Index statements by id for task lookup.
    let mut stmt_index: BTreeMap<StmtId, &Stmt> = BTreeMap::new();
    visit::walk_stmts(&f.body, &mut |s| {
        stmt_index.insert(s.id, s);
    });
    let ids: Vec<TaskId> = htg.tasks.iter().map(|t| t.id).collect();
    for id in ids {
        let mut counts = AccessCounts::new();
        let stmt_ids = htg.task(id).stmts.clone();
        for sid in stmt_ids {
            if let Some(s) = stmt_index.get(&sid) {
                count_stmt(s, 1, program, ctx, &mut counts);
            }
        }
        htg.task_mut(id).access_counts = counts;
    }
}

/// Counts worst-case accesses of a single statement subtree with an
/// iteration multiplier. Exposed for the WCET engine, which needs the same
/// accounting for contention inflation.
pub fn count_stmt(
    s: &Stmt,
    mult: u64,
    program: &Program,
    ctx: &AnnotateCtx,
    out: &mut AccessCounts,
) {
    match &s.kind {
        StmtKind::Decl { name, init, .. } => {
            if let Some(e) = init {
                count_expr(e, mult, program, ctx, out);
                bump(out, name, mult);
            }
        }
        StmtKind::Assign { target, value } => {
            count_expr(value, mult, program, ctx, out);
            match target {
                LValue::Var(n) => bump(out, n, mult),
                LValue::ArrayElem { array, indices } => {
                    for i in indices {
                        count_expr(i, mult, program, ctx, out);
                    }
                    bump(out, array, mult);
                }
            }
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            count_expr(cond, mult, program, ctx, out);
            let mut then_counts = AccessCounts::new();
            for st in &then_blk.stmts {
                count_stmt(st, mult, program, ctx, &mut then_counts);
            }
            let mut else_counts = AccessCounts::new();
            for st in &else_blk.stmts {
                count_stmt(st, mult, program, ctx, &mut else_counts);
            }
            // Worst case per variable: max over branches.
            for (k, v) in then_counts {
                let e = else_counts.get(&k).copied().unwrap_or(0);
                bump(out, &k, v.max(e));
            }
            for (k, v) in else_counts {
                if !out.contains_key(&k) {
                    bump(out, &k, v);
                } else {
                    // Already merged via then-branch max unless absent
                    // there; handled above, so only add missing keys.
                }
                let _ = v;
            }
        }
        StmtKind::For {
            var, lo, hi, body, ..
        } => {
            count_expr(lo, mult, program, ctx, out);
            count_expr(hi, mult, program, ctx, out);
            let b = loop_bound(s, ctx);
            bump(out, var, mult * (b + 1)); // induction variable updates
            for st in &body.stmts {
                count_stmt(st, mult * b, program, ctx, out);
            }
        }
        StmtKind::While { cond, body, bound } => {
            let b = ctx.bounds.get(&s.id).copied().unwrap_or(*bound);
            count_expr(cond, mult * (b + 1), program, ctx, out);
            for st in &body.stmts {
                count_stmt(st, mult * b, program, ctx, out);
            }
        }
        StmtKind::Call { name, args } => {
            count_call(name, args, mult, program, ctx, out);
        }
        StmtKind::Return { value } => {
            if let Some(e) = value {
                count_expr(e, mult, program, ctx, out);
            }
        }
    }
}

fn count_expr(e: &Expr, mult: u64, program: &Program, ctx: &AnnotateCtx, out: &mut AccessCounts) {
    match e {
        Expr::Var(n) => bump(out, n, mult),
        Expr::ArrayElem { array, indices } => {
            for i in indices {
                count_expr(i, mult, program, ctx, out);
            }
            bump(out, array, mult);
        }
        Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => {
            count_expr(arg, mult, program, ctx, out)
        }
        Expr::Binary { lhs, rhs, .. } => {
            count_expr(lhs, mult, program, ctx, out);
            count_expr(rhs, mult, program, ctx, out);
        }
        Expr::Call { name, args } => count_call(name, args, mult, program, ctx, out),
        _ => {}
    }
}

fn count_call(
    name: &str,
    args: &[Expr],
    mult: u64,
    program: &Program,
    ctx: &AnnotateCtx,
    out: &mut AccessCounts,
) {
    if argo_ir::intrinsics::is_intrinsic(name) {
        for a in args {
            count_expr(a, mult, program, ctx, out);
        }
        return;
    }
    let Some(callee) = program.function(name) else {
        for a in args {
            count_expr(a, mult, program, ctx, out);
        }
        return;
    };
    // Scalar arguments are evaluated (read); array arguments are passed
    // by reference — no element access happens at the call site itself.
    for (a, p) in args.iter().zip(&callee.params) {
        if !p.ty.is_array() {
            count_expr(a, mult, program, ctx, out);
        }
    }
    // Count the callee body with array parameters renamed to the caller's
    // argument arrays (arrays alias across the call).
    let mut inner = AccessCounts::new();
    for st in &callee.body.stmts {
        count_stmt(st, mult, program, ctx, &mut inner);
    }
    let mut rename: BTreeMap<&str, &str> = BTreeMap::new();
    for (p, a) in callee.params.iter().zip(args) {
        if p.ty.is_array() {
            if let Expr::Var(arg_name) = a {
                rename.insert(p.name.as_str(), arg_name.as_str());
            }
        }
    }
    for (var, n) in inner {
        match rename.get(var.as_str()) {
            Some(outer) => bump(out, outer, n),
            // Callee-local variables are that core's locals; attribute
            // them under a scoped name so they never collide with caller
            // variables.
            None => bump(out, &format!("{name}::{var}"), n),
        }
    }
}

fn loop_bound(s: &Stmt, ctx: &AnnotateCtx) -> u64 {
    if let Some(b) = ctx.bounds.get(&s.id) {
        return *b;
    }
    if let StmtKind::For { lo, hi, step, .. } = &s.kind {
        if let (Some(l), Some(h)) = (lo.as_int_const(), hi.as_int_const()) {
            if h > l {
                return ((h - l) as u64).div_ceil(*step as u64);
            }
            return 0;
        }
    }
    ctx.default_bound.max(1)
}

fn bump(out: &mut AccessCounts, var: &str, n: u64) {
    *out.entry(var.to_string()).or_insert(0) += n;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract::extract, Granularity};
    use argo_ir::parse::parse_program;

    fn counts_of(src: &str, task_name_frag: &str) -> AccessCounts {
        let p = parse_program(src).unwrap();
        let mut h = extract(&p, "main", Granularity::Loop).unwrap();
        annotate(&mut h, &p, &AnnotateCtx::with_default_bound(1));
        h.tasks
            .iter()
            .find(|t| t.name.contains(task_name_frag))
            .unwrap_or_else(|| panic!("no task matching `{task_name_frag}`"))
            .access_counts
            .clone()
    }

    #[test]
    fn loop_multiplies_accesses() {
        let c = counts_of(
            "void main(real a[64], real b[64]) { int i; \
             for (i=0;i<64;i=i+1) { b[i] = a[i] * 2.0; } }",
            "for(i)",
        );
        assert_eq!(c["a"], 64);
        assert_eq!(c["b"], 64);
        // i: written 65 times (64 iterations + final), read in subscripts.
        assert!(c["i"] >= 64);
    }

    #[test]
    fn nested_loops_multiply() {
        let c = counts_of(
            "void main(real m[8][8]) { int i; int j; \
             for (i=0;i<8;i=i+1) { for (j=0;j<8;j=j+1) { m[i][j] = 0.0; } } }",
            "for(i)",
        );
        assert_eq!(c["m"], 64);
    }

    #[test]
    fn branches_take_per_var_max() {
        let src = "void main(real a[16], real b[16], int k) { int i; \
             for (i=0;i<16;i=i+1) { \
               if (k > 0) { a[i] = 1.0; a[i] = 2.0; } else { b[i] = 1.0; } } }";
        let c = counts_of(src, "for(i)");
        // Worst case: then-branch touches a twice per iteration, else
        // touches b once; per-var max gives both.
        assert_eq!(c["a"], 32);
        assert_eq!(c["b"], 16);
    }

    #[test]
    fn while_uses_declared_bound() {
        let c = counts_of(
            "void main(real a[4]) { real x; x = 100.0; int g; g = 0; \
             #pragma bound 10\n while (x > 1.0) { x = x / 2.0; a[0] = x; g = g + 1; } }",
            "while",
        );
        assert_eq!(c["a"], 10);
    }

    #[test]
    fn provided_bounds_override_defaults() {
        let src = "void main(real a[64], int n) { int i; \
             for (i=0;i<n;i=i+1) { a[i] = 0.0; } }";
        let p = parse_program(src).unwrap();
        let mut h = extract(&p, "main", Granularity::Loop).unwrap();
        // Find the loop's stmt id.
        let loop_task = h.tasks.iter().find(|t| t.name.starts_with("for")).unwrap();
        let loop_sid = loop_task.stmts[0];
        let mut ctx = AnnotateCtx::with_default_bound(1);
        ctx.bounds.insert(loop_sid, 40);
        annotate(&mut h, &p, &ctx);
        let c = &h
            .tasks
            .iter()
            .find(|t| t.name.starts_with("for"))
            .unwrap()
            .access_counts;
        assert_eq!(c["a"], 40);
    }

    #[test]
    fn calls_attribute_accesses_to_caller_arrays() {
        let c = counts_of(
            "void fill(real buf[32]) { int i; \
               for (i=0;i<32;i=i+1) { buf[i] = 0.0; } } \
             void main(real data[32]) { fill(data); }",
            "call(fill)",
        );
        assert_eq!(c["data"], 32);
        // Callee-local loop var is scoped.
        assert!(c.contains_key("fill::i"));
    }
}
