//! DOALL / reduction loop chunking.
//!
//! The transformation that turns a parallelizable loop into `k` sibling
//! loops over disjoint index ranges — after task extraction these become
//! `k` independent tasks the scheduler can map to different cores. This is
//! the concrete mechanism behind the paper's "task parallelism extraction
//! through loop transformations" (§ II-B).
//!
//! For a loop `for (i = lo; i < hi; i = i + 1)` and `k` chunks, chunk `c`
//! iterates over `[lo + d*c/k, lo + d*(c+1)/k)` with `d = hi - lo`; the
//! integer-division bounds telescope, so the union of chunks is exactly
//! the original range even when `d` is not divisible by `k` or the bounds
//! are runtime expressions.
//!
//! Reduction loops (`s = s + e`, `s = s * e`, `s = fmin/fmax/imin/imax(s,
//! e)`) get per-chunk accumulators initialised to the operator identity
//! (or a copy of `s` for min/max) and a combine epilogue.

use crate::{fresh_name, rename_var_stmt, taken_names, TransformError};
use argo_htg::deps::{classify_loop, LoopParallelism};
use argo_ir::ast::*;
use argo_ir::types::{Scalar, Type};
use argo_ir::validate::symbol_table;
use argo_ir::StmtId;

/// Outcome of chunking one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkReport {
    /// How many chunk loops were produced.
    pub chunks: usize,
    /// The parallelism class that allowed chunking.
    pub class: String,
}

/// Chunks the top-level `for` loop with statement id `loop_id` of
/// function `func` into `k` sibling loops.
///
/// # Errors
///
/// Returns [`TransformError`] if the function or loop is missing, the
/// loop has a non-unit step, or the dependence analysis classifies it as
/// sequential.
pub fn chunk_loop(
    program: &mut Program,
    func: &str,
    loop_id: StmtId,
    k: usize,
) -> Result<ChunkReport, TransformError> {
    if k < 2 {
        return Err(TransformError::new("chunk count must be at least 2"));
    }
    let f = program
        .function_mut(func)
        .ok_or_else(|| TransformError::new(format!("no function `{func}`")))?;
    let pos = f
        .body
        .stmts
        .iter()
        .position(|s| s.id == loop_id)
        .ok_or_else(|| TransformError::new(format!("no top-level statement {loop_id}")))?;
    let symbols = symbol_table(f);
    let stmt = f.body.stmts[pos].clone();
    let StmtKind::For {
        var,
        lo,
        hi,
        step,
        body,
    } = &stmt.kind
    else {
        return Err(TransformError::new(format!("{loop_id} is not a for loop")));
    };
    if *step != 1 {
        return Err(TransformError::new("only unit-step loops can be chunked"));
    }
    let class = classify_loop(&stmt);
    let reductions = match &class {
        LoopParallelism::Sequential => {
            return Err(TransformError::new(
                "loop is sequential (loop-carried dependence); cannot chunk",
            ))
        }
        LoopParallelism::Doall => Vec::new(),
        LoopParallelism::Reduction(vars) => vars.clone(),
    };

    let mut taken = taken_names(f);
    let d = Expr::bin(BinOp::Sub, hi.clone(), lo.clone());

    // Fresh induction vars and (for reductions) per-chunk accumulators.
    let mut new_stmts: Vec<Stmt> = Vec::new();
    let mut partial_names: Vec<Vec<String>> = Vec::new(); // [chunk][red]
    let mut red_ops: Vec<ReductionOp> = Vec::new();
    for r in &reductions {
        let op = find_reduction_op(body, r).ok_or_else(|| {
            TransformError::new(format!("could not identify reduction operator for `{r}`"))
        })?;
        red_ops.push(op);
    }

    let mut iv_names: Vec<String> = Vec::with_capacity(k);
    for c in 0..k {
        let iv = fresh_name(&mut taken, &format!("{var}__chunk{c}"));
        new_stmts.push(Stmt::new(StmtKind::Decl {
            name: iv.clone(),
            ty: Type::Scalar(Scalar::Int),
            init: None,
        }));
        iv_names.push(iv);
        let mut chunk_partials = Vec::new();
        for (r, op) in reductions.iter().zip(&red_ops) {
            let pn = fresh_name(&mut taken, &format!("{r}_p{c}"));
            let rty = symbols
                .get(r)
                .cloned()
                .unwrap_or(Type::Scalar(Scalar::Real));
            let init = match op {
                ReductionOp::Add => Some(zero_of(rty.elem())),
                ReductionOp::Mul => Some(one_of(rty.elem())),
                // Min/max partials start from a copy of the accumulator:
                // idempotent, so combining with `s` again is harmless.
                ReductionOp::Min(_) | ReductionOp::Max(_) => Some(Expr::Var(var_read(r))),
            };
            new_stmts.push(Stmt::new(StmtKind::Decl {
                name: pn.clone(),
                ty: rty,
                init,
            }));
            chunk_partials.push(pn);
        }
        partial_names.push(chunk_partials);
    }

    // Build the k chunk loops.
    let mut chunk_loops: Vec<Stmt> = Vec::new();
    for c in 0..k {
        let iv = iv_names[c].clone();
        // Bounds: lo + d*c/k  and  lo + d*(c+1)/k.
        let lo_c = Expr::bin(
            BinOp::Add,
            lo.clone(),
            Expr::bin(
                BinOp::Div,
                Expr::bin(BinOp::Mul, d.clone(), Expr::int(c as i64)),
                Expr::int(k as i64),
            ),
        );
        let hi_c = Expr::bin(
            BinOp::Add,
            lo.clone(),
            Expr::bin(
                BinOp::Div,
                Expr::bin(BinOp::Mul, d.clone(), Expr::int(c as i64 + 1)),
                Expr::int(k as i64),
            ),
        );
        // Rename induction var and reduction accumulators in the body.
        let mut new_body_stmts: Vec<Stmt> = Vec::new();
        for s in &body.stmts {
            let mut ns = rename_var_stmt(s, var, &iv);
            for (r, pn) in reductions.iter().zip(&partial_names[c]) {
                ns = rename_var_stmt(&ns, r, pn);
            }
            new_body_stmts.push(ns);
        }
        // Body-local declarations are duplicated per chunk: give them
        // fresh per-chunk names so the function stays single-declaration.
        // (Inner loop variables declared *outside* the loop stay shared —
        // they are privatized at the task level, not re-declared.)
        let mut local_decls: Vec<String> = Vec::new();
        for s in &new_body_stmts {
            argo_ir::visit::walk_stmts(&Block::of(vec![s.clone()]), &mut |st| {
                if let StmtKind::Decl { name, .. } = &st.kind {
                    local_decls.push(name.clone());
                }
            });
        }
        local_decls.sort();
        local_decls.dedup();
        for d in local_decls {
            let fresh = fresh_name(&mut taken, &format!("{d}__k{c}"));
            new_body_stmts = new_body_stmts
                .iter()
                .map(|s| rename_var_stmt(s, &d, &fresh))
                .collect();
        }
        chunk_loops.push(Stmt::new(StmtKind::For {
            var: iv,
            lo: lo_c,
            hi: hi_c,
            step: 1,
            body: Block::of(new_body_stmts),
        }));
    }
    new_stmts.extend(chunk_loops);

    // Combine epilogue for reductions.
    for (idx, (r, op)) in reductions.iter().zip(&red_ops).enumerate() {
        for partial in partial_names.iter().take(k) {
            let pn = &partial[idx];
            let combined = match op {
                ReductionOp::Add => {
                    Expr::bin(BinOp::Add, Expr::Var(var_read(r)), Expr::Var(pn.clone()))
                }
                ReductionOp::Mul => {
                    Expr::bin(BinOp::Mul, Expr::Var(var_read(r)), Expr::Var(pn.clone()))
                }
                ReductionOp::Min(name) | ReductionOp::Max(name) => Expr::Call {
                    name: name.clone(),
                    args: vec![Expr::Var(var_read(r)), Expr::Var(pn.clone())],
                },
            };
            new_stmts.push(Stmt::new(StmtKind::Assign {
                target: LValue::Var(r.clone()),
                value: combined,
            }));
        }
    }

    let f = program.function_mut(func).expect("checked above");
    f.body.stmts.splice(pos..=pos, new_stmts);
    program.renumber();
    Ok(ChunkReport {
        chunks: k,
        class: class.to_string(),
    })
}

/// Chunks every parallelizable top-level `for` loop of `func` into `k`
/// chunks; returns how many loops were chunked.
///
/// # Errors
///
/// Propagates lookup errors; loops that are sequential or non-unit-step
/// are silently skipped.
pub fn chunk_all_parallel_loops(
    program: &mut Program,
    func: &str,
    k: usize,
) -> Result<usize, TransformError> {
    if k < 2 {
        return Ok(0);
    }
    let mut chunked = 0;
    loop {
        let f = program
            .function(func)
            .ok_or_else(|| TransformError::new(format!("no function `{func}`")))?;
        let candidate = f.body.stmts.iter().find_map(|s| match &s.kind {
            StmtKind::For { step: 1, var, .. } if !var.contains("__chunk") => {
                classify_loop(s).is_parallelizable().then_some(s.id)
            }
            _ => None,
        });
        match candidate {
            Some(id) => {
                chunk_loop(program, func, id, k)?;
                chunked += 1;
            }
            None => break,
        }
    }
    Ok(chunked)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ReductionOp {
    Add,
    Mul,
    Min(String),
    Max(String),
}

fn find_reduction_op(body: &Block, var: &str) -> Option<ReductionOp> {
    let mut found = None;
    argo_ir::visit::walk_stmts(body, &mut |s| {
        if found.is_some() {
            return;
        }
        if let StmtKind::Assign {
            target: LValue::Var(n),
            value,
        } = &s.kind
        {
            if n == var {
                found = match value {
                    Expr::Binary { op: BinOp::Add, .. } => Some(ReductionOp::Add),
                    Expr::Binary { op: BinOp::Mul, .. } => Some(ReductionOp::Mul),
                    Expr::Call { name, .. } if name == "fmin" || name == "imin" => {
                        Some(ReductionOp::Min(name.clone()))
                    }
                    Expr::Call { name, .. } if name == "fmax" || name == "imax" => {
                        Some(ReductionOp::Max(name.clone()))
                    }
                    _ => None,
                };
            }
        }
    });
    found
}

fn var_read(name: &str) -> String {
    name.to_string()
}

fn zero_of(s: Scalar) -> Expr {
    match s {
        Scalar::Int => Expr::int(0),
        Scalar::Real => Expr::real(0.0),
        Scalar::Bool => Expr::BoolLit(false),
    }
}

fn one_of(s: Scalar) -> Expr {
    match s {
        Scalar::Int => Expr::int(1),
        Scalar::Real => Expr::real(1.0),
        Scalar::Bool => Expr::BoolLit(true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::interp::{ArgVal, ArrayData, Interp, NullHook, ScalarVal};
    use argo_ir::parse::parse_program;
    use argo_ir::validate::validate;

    fn first_loop_id(p: &Program, func: &str) -> StmtId {
        p.function(func)
            .unwrap()
            .body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::For { .. }))
            .unwrap()
            .id
    }

    /// Chunked and original programs must compute identical results.
    fn check_equivalence(src: &str, k: usize, arr_params: &[(&str, usize)]) {
        let original = parse_program(src).unwrap();
        validate(&original).unwrap();
        let mut chunked = original.clone();
        let lid = first_loop_id(&chunked, "main");
        chunk_loop(&mut chunked, "main", lid, k).unwrap();
        validate(&chunked).expect("chunked program must still validate");

        let mk_args = || -> Vec<ArgVal> {
            arr_params
                .iter()
                .map(|&(_, n)| {
                    let vals: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 + 1.0).collect();
                    ArgVal::Array(ArrayData::from_reals(&vals))
                })
                .collect()
        };
        let mut i1 = Interp::new(&original);
        let out1 = i1.call_full("main", mk_args(), &mut NullHook).unwrap();
        let mut i2 = Interp::new(&chunked);
        let out2 = i2.call_full("main", mk_args(), &mut NullHook).unwrap();
        assert_eq!(out1.ret, out2.ret);
        assert_eq!(out1.arrays, out2.arrays);
    }

    #[test]
    fn doall_chunking_preserves_semantics() {
        check_equivalence(
            "void main(real a[64], real b[64]) { int i; \
             for (i=0;i<64;i=i+1) { b[i] = a[i] * 2.0 + 1.0; } }",
            4,
            &[("a", 64), ("b", 64)],
        );
    }

    #[test]
    fn uneven_division_covers_all_iterations() {
        check_equivalence(
            "void main(real a[61], real b[61]) { int i; \
             for (i=0;i<61;i=i+1) { b[i] = a[i] + 3.0; } }",
            4,
            &[("a", 61), ("b", 61)],
        );
    }

    #[test]
    fn nonzero_lower_bound() {
        check_equivalence(
            "void main(real a[64], real b[64]) { int i; \
             for (i=5;i<59;i=i+1) { b[i] = a[i] - 1.0; } }",
            3,
            &[("a", 64), ("b", 64)],
        );
    }

    #[test]
    fn sum_reduction_preserves_semantics() {
        check_equivalence(
            "real main(real a[64]) { real s; int i; s = 10.0; \
             for (i=0;i<64;i=i+1) { s = s + a[i]; } return s; }",
            4,
            &[("a", 64)],
        );
    }

    #[test]
    fn max_reduction_preserves_semantics() {
        check_equivalence(
            "real main(real a[64]) { real m; int i; m = 0.0; \
             for (i=0;i<64;i=i+1) { m = fmax(m, a[i]); } return m; }",
            8,
            &[("a", 64)],
        );
    }

    #[test]
    fn chunk_count_matches_k() {
        let src = "void main(real a[32], real b[32]) { int i; \
             for (i=0;i<32;i=i+1) { b[i] = a[i]; } }";
        let mut p = parse_program(src).unwrap();
        let lid = first_loop_id(&p, "main");
        let report = chunk_loop(&mut p, "main", lid, 4).unwrap();
        assert_eq!(report.chunks, 4);
        let loops = p
            .function("main")
            .unwrap()
            .body
            .stmts
            .iter()
            .filter(|s| matches!(s.kind, StmtKind::For { .. }))
            .count();
        assert_eq!(loops, 4);
    }

    #[test]
    fn sequential_loop_is_rejected() {
        let src = "void main(real b[64]) { int i; \
             for (i=1;i<64;i=i+1) { b[i] = b[i-1] + 1.0; } }";
        let mut p = parse_program(src).unwrap();
        let lid = first_loop_id(&p, "main");
        let err = chunk_loop(&mut p, "main", lid, 4).unwrap_err();
        assert!(err.msg.contains("sequential"));
    }

    #[test]
    fn runtime_bounds_chunk_correctly() {
        // Bound is a parameter: chunk bounds are expressions.
        let original = parse_program(
            "void main(real a[64], real b[64], int n) { int i; \
             for (i=0;i<n;i=i+1) { b[i] = a[i] * 2.0; } }",
        )
        .unwrap();
        let mut chunked = original.clone();
        let lid = first_loop_id(&chunked, "main");
        chunk_loop(&mut chunked, "main", lid, 4).unwrap();
        validate(&chunked).unwrap();
        for n in [0i64, 1, 17, 64] {
            let args = || {
                vec![
                    ArgVal::Array(ArrayData::from_reals(&vec![2.0; 64])),
                    ArgVal::Array(ArrayData::from_reals(&vec![0.0; 64])),
                    ArgVal::Scalar(ScalarVal::Int(n)),
                ]
            };
            let mut i1 = Interp::new(&original);
            let o1 = i1.call_full("main", args(), &mut NullHook).unwrap();
            let mut i2 = Interp::new(&chunked);
            let o2 = i2.call_full("main", args(), &mut NullHook).unwrap();
            assert_eq!(o1.arrays, o2.arrays, "n={n}");
        }
    }

    #[test]
    fn chunk_all_parallel_loops_handles_multiple() {
        let mut p = parse_program(
            "void main(real a[32], real b[32], real c[32]) { int i; \
             for (i=0;i<32;i=i+1) { b[i] = a[i]; } \
             for (i=0;i<32;i=i+1) { c[i] = b[i] + b[i]; } }",
        )
        .unwrap();
        let n = chunk_all_parallel_loops(&mut p, "main", 2).unwrap();
        assert_eq!(n, 2);
        validate(&p).unwrap();
        let loops = p
            .function("main")
            .unwrap()
            .body
            .stmts
            .iter()
            .filter(|s| matches!(s.kind, StmtKind::For { .. }))
            .count();
        assert_eq!(loops, 4);
    }

    #[test]
    fn k_of_one_is_rejected() {
        let mut p =
            parse_program("void main(real b[8]) { int i; for (i=0;i<8;i=i+1) { b[i] = 0.0; } }")
                .unwrap();
        let lid = first_loop_id(&p, "main");
        assert!(chunk_loop(&mut p, "main", lid, 1).is_err());
    }
}
