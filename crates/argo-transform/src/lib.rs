//! # argo-transform — predictability-enhancing program transformations
//!
//! The GeCoS role of the tool flow: "the IR is used as input by the GeCoS
//! source-to-source transformation framework, which performs several
//! predictability enhancing program transformations (scratchpad management
//! for data, predictability oriented task parallelism extraction through
//! loop transformations, etc.)" (paper § II-B).
//!
//! Transformation catalogue:
//!
//! * [`fold`] — constant folding (enables static loop bounds);
//! * [`chunk`] — DOALL/reduction loop chunking across cores: the
//!   transformation that actually *extracts task parallelism* from loops;
//! * [`fission`] — loop distribution of independent body statements;
//! * [`unroll`] — full unrolling of small constant-trip loops;
//! * [`split`] — index-set splitting (paper ref \[10\]) and strip-mining;
//! * [`spm`] — WCET-directed scratchpad allocation (knapsack; ref \[6\]).
//!
//! All structural passes leave the program re-validated and renumbered.

pub mod chunk;
pub mod fission;
pub mod fold;
pub mod split;
pub mod spm;
pub mod unroll;

use argo_ir::ast::*;
use argo_ir::StmtId;
use std::collections::BTreeSet;
use std::fmt;

/// Error from a transformation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformError {
    /// Human-readable message.
    pub msg: String,
}

impl TransformError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> TransformError {
        TransformError { msg: msg.into() }
    }
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transform error: {}", self.msg)
    }
}

impl std::error::Error for TransformError {}

/// A source-to-source transformation pass.
pub trait Pass {
    /// Runs the pass; returns `true` if the program changed.
    ///
    /// # Errors
    ///
    /// Returns a [`TransformError`] if the pass cannot be applied.
    fn run(&self, program: &mut Program) -> Result<bool, TransformError>;

    /// Short identifier for reports.
    fn name(&self) -> &'static str;
}

/// Runs passes in order, repeating the whole sequence until a fixpoint
/// (bounded by `max_rounds`); renumbers statement ids afterwards.
///
/// # Errors
///
/// Propagates the first pass error.
pub fn run_pipeline(
    program: &mut Program,
    passes: &[&dyn Pass],
    max_rounds: u32,
) -> Result<u32, TransformError> {
    let mut rounds = 0;
    for _ in 0..max_rounds {
        let mut changed = false;
        for p in passes {
            changed |= p.run(program)?;
        }
        rounds += 1;
        if !changed {
            break;
        }
    }
    program.renumber();
    Ok(rounds)
}

/// All variable names already used in a function (params + decls + loop
/// vars); used to generate fresh names.
pub fn taken_names(f: &Function) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = f.params.iter().map(|p| p.name.clone()).collect();
    argo_ir::visit::walk_stmts(&f.body, &mut |s| match &s.kind {
        StmtKind::Decl { name, .. } => {
            names.insert(name.clone());
        }
        StmtKind::For { var, .. } => {
            names.insert(var.clone());
        }
        _ => {}
    });
    names
}

/// Generates a fresh name with the given base, registering it in `taken`.
pub fn fresh_name(taken: &mut BTreeSet<String>, base: &str) -> String {
    if !taken.contains(base) {
        taken.insert(base.to_string());
        return base.to_string();
    }
    for i in 0.. {
        let cand = format!("{base}_{i}");
        if !taken.contains(&cand) {
            taken.insert(cand.clone());
            return cand;
        }
    }
    unreachable!()
}

/// Substitutes every read of scalar `var` in `e` with `replacement`.
pub fn subst_var(e: &Expr, var: &str, replacement: &Expr) -> Expr {
    match e {
        Expr::Var(n) if n == var => replacement.clone(),
        Expr::IntLit(_) | Expr::RealLit(_) | Expr::BoolLit(_) | Expr::Var(_) => e.clone(),
        Expr::ArrayElem { array, indices } => Expr::ArrayElem {
            array: array.clone(),
            indices: indices
                .iter()
                .map(|i| subst_var(i, var, replacement))
                .collect(),
        },
        Expr::Unary { op, arg } => Expr::Unary {
            op: *op,
            arg: Box::new(subst_var(arg, var, replacement)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(subst_var(lhs, var, replacement)),
            rhs: Box::new(subst_var(rhs, var, replacement)),
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| subst_var(a, var, replacement))
                .collect(),
        },
        Expr::Cast { to, arg } => Expr::Cast {
            to: *to,
            arg: Box::new(subst_var(arg, var, replacement)),
        },
    }
}

/// Substitutes reads of `var` throughout a statement subtree (including
/// lvalue indices but not lvalue bases, which are writes).
pub fn subst_var_stmt(s: &Stmt, var: &str, replacement: &Expr) -> Stmt {
    let kind = match &s.kind {
        StmtKind::Decl { name, ty, init } => StmtKind::Decl {
            name: name.clone(),
            ty: ty.clone(),
            init: init.as_ref().map(|e| subst_var(e, var, replacement)),
        },
        StmtKind::Assign { target, value } => StmtKind::Assign {
            target: match target {
                LValue::Var(n) => LValue::Var(n.clone()),
                LValue::ArrayElem { array, indices } => LValue::ArrayElem {
                    array: array.clone(),
                    indices: indices
                        .iter()
                        .map(|i| subst_var(i, var, replacement))
                        .collect(),
                },
            },
            value: subst_var(value, var, replacement),
        },
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => StmtKind::If {
            cond: subst_var(cond, var, replacement),
            then_blk: subst_block(then_blk, var, replacement),
            else_blk: subst_block(else_blk, var, replacement),
        },
        StmtKind::For {
            var: lv,
            lo,
            hi,
            step,
            body,
        } => StmtKind::For {
            var: lv.clone(),
            lo: subst_var(lo, var, replacement),
            hi: subst_var(hi, var, replacement),
            step: *step,
            // Inner loop shadowing: if the inner loop redefines `var`,
            // stop substituting in its body.
            body: if lv == var {
                body.clone()
            } else {
                subst_block(body, var, replacement)
            },
        },
        StmtKind::While { cond, bound, body } => StmtKind::While {
            cond: subst_var(cond, var, replacement),
            bound: *bound,
            body: subst_block(body, var, replacement),
        },
        StmtKind::Call { name, args } => StmtKind::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| subst_var(a, var, replacement))
                .collect(),
        },
        StmtKind::Return { value } => StmtKind::Return {
            value: value.as_ref().map(|e| subst_var(e, var, replacement)),
        },
    };
    Stmt { id: s.id, kind }
}

fn subst_block(b: &Block, var: &str, replacement: &Expr) -> Block {
    Block::of(
        b.stmts
            .iter()
            .map(|s| subst_var_stmt(s, var, replacement))
            .collect(),
    )
}

/// Renames every occurrence of scalar `old` (reads **and** writes,
/// declarations and loop headers, through the whole subtree — renaming is
/// not substitution, so shadowing does not stop it) to `new`. Used by loop
/// chunking/fission to give each copy private locals.
pub fn rename_var_stmt(s: &Stmt, old: &str, new: &str) -> Stmt {
    let rn = |n: &String| if n == old { new.to_string() } else { n.clone() };
    let re = |e: &Expr| rename_expr(e, old, new);
    let kind = match &s.kind {
        StmtKind::Decl { name, ty, init } => StmtKind::Decl {
            name: rn(name),
            ty: ty.clone(),
            init: init.as_ref().map(&re),
        },
        StmtKind::Assign { target, value } => StmtKind::Assign {
            target: match target {
                LValue::Var(n) => LValue::Var(rn(n)),
                LValue::ArrayElem { array, indices } => LValue::ArrayElem {
                    array: rn(array),
                    indices: indices.iter().map(&re).collect(),
                },
            },
            value: re(value),
        },
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => StmtKind::If {
            cond: re(cond),
            then_blk: rename_block(then_blk, old, new),
            else_blk: rename_block(else_blk, old, new),
        },
        StmtKind::For {
            var,
            lo,
            hi,
            step,
            body,
        } => StmtKind::For {
            var: rn(var),
            lo: re(lo),
            hi: re(hi),
            step: *step,
            body: rename_block(body, old, new),
        },
        StmtKind::While { cond, bound, body } => StmtKind::While {
            cond: re(cond),
            bound: *bound,
            body: rename_block(body, old, new),
        },
        StmtKind::Call { name, args } => StmtKind::Call {
            name: name.clone(),
            args: args.iter().map(&re).collect(),
        },
        StmtKind::Return { value } => StmtKind::Return {
            value: value.as_ref().map(&re),
        },
    };
    Stmt { id: s.id, kind }
}

fn rename_block(b: &Block, old: &str, new: &str) -> Block {
    Block::of(
        b.stmts
            .iter()
            .map(|s| rename_var_stmt(s, old, new))
            .collect(),
    )
}

/// Renames variable `old` to `new` in an expression — both scalar reads
/// and array bases (unlike [`subst_var`], which substitutes scalar reads
/// only).
pub fn rename_expr(e: &Expr, old: &str, new: &str) -> Expr {
    match e {
        Expr::Var(n) if n == old => Expr::Var(new.to_string()),
        Expr::IntLit(_) | Expr::RealLit(_) | Expr::BoolLit(_) | Expr::Var(_) => e.clone(),
        Expr::ArrayElem { array, indices } => Expr::ArrayElem {
            array: if array == old {
                new.to_string()
            } else {
                array.clone()
            },
            indices: indices.iter().map(|i| rename_expr(i, old, new)).collect(),
        },
        Expr::Unary { op, arg } => Expr::Unary {
            op: *op,
            arg: Box::new(rename_expr(arg, old, new)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(rename_expr(lhs, old, new)),
            rhs: Box::new(rename_expr(rhs, old, new)),
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(|a| rename_expr(a, old, new)).collect(),
        },
        Expr::Cast { to, arg } => Expr::Cast {
            to: *to,
            arg: Box::new(rename_expr(arg, old, new)),
        },
    }
}

/// Finds the position of a top-level statement by id in a function body.
pub fn top_level_position(f: &Function, id: StmtId) -> Option<usize> {
    f.body.stmts.iter().position(|s| s.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::parse::{parse_expr, parse_program};
    use argo_ir::printer::print_expr;

    #[test]
    fn fresh_names_avoid_collisions() {
        let mut taken: BTreeSet<String> = ["i".to_string(), "i_0".to_string()].into();
        assert_eq!(fresh_name(&mut taken, "j"), "j");
        assert_eq!(fresh_name(&mut taken, "i"), "i_1");
        assert_eq!(fresh_name(&mut taken, "i"), "i_2");
    }

    #[test]
    fn subst_replaces_reads_only() {
        let e = parse_expr("a[i] + i * 2").unwrap();
        let r = subst_var(&e, "i", &Expr::int(5));
        assert_eq!(print_expr(&r), "(a[5] + (5 * 2))");
    }

    #[test]
    fn subst_respects_inner_loop_shadowing() {
        let p = parse_program(
            "void f(int n, real a[4]) { int i; int k; k = n; \
             for (i=0;i<k;i=i+1) { a[i] = 0.0; } }",
        )
        .unwrap();
        let loop_stmt = &p.functions[0].body.stmts[3];
        // Substituting `i` outside must not touch the loop body that
        // redefines i.
        let out = subst_var_stmt(loop_stmt, "i", &Expr::int(9));
        match &out.kind {
            StmtKind::For { body, .. } => match &body.stmts[0].kind {
                StmtKind::Assign {
                    target: LValue::ArrayElem { indices, .. },
                    ..
                } => {
                    assert_eq!(indices[0], Expr::var("i"));
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn rename_touches_reads_and_writes() {
        let p = parse_program("void f() { int s; s = 0; s = s + 1; }").unwrap();
        let s2 = rename_var_stmt(&p.functions[0].body.stmts[2], "s", "s_p");
        match &s2.kind {
            StmtKind::Assign {
                target: LValue::Var(n),
                value,
            } => {
                assert_eq!(n, "s_p");
                assert_eq!(argo_ir::printer::print_expr(value), "(s_p + 1)");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn taken_names_include_everything() {
        let p = parse_program(
            "void f(int n, real a[4]) { int i; for (i=0;i<n;i=i+1) { real t; t = 0.0; } }",
        )
        .unwrap();
        let names = taken_names(&p.functions[0]);
        for n in ["n", "a", "i", "t"] {
            assert!(names.contains(n));
        }
    }
}
