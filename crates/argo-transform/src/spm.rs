//! WCET-directed scratchpad allocation (paper ref \[6\]).
//!
//! Chooses which arrays to place in a core's scratchpad to maximise the
//! WCET cycles saved, subject to the SPM capacity — a 0/1 knapsack. Two
//! solvers are provided: an exact dynamic program (capacity quantised to
//! words) and the greedy density heuristic; the E5 ablation compares both
//! against shared-memory-only placement.
//!
//! The *gain* of placing a variable is
//! `accesses × (shared_cost − spm_cost)`: access counts come from the HTG
//! annotation pass (worst-case counts, § II-B), costs from the ADL.

/// One placement candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpmCandidate {
    /// Variable name.
    pub name: String,
    /// Footprint in bytes.
    pub size_bytes: u64,
    /// WCET cycles saved if placed in the scratchpad.
    pub gain_cycles: u64,
}

/// Result of an allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpmAllocation {
    /// Names chosen for the scratchpad.
    pub chosen: Vec<String>,
    /// Total bytes used.
    pub used_bytes: u64,
    /// Total WCET cycles saved.
    pub saved_cycles: u64,
}

/// Exact 0/1-knapsack allocation via dynamic programming over capacity
/// quantised to 8-byte words. Exact as long as all sizes are multiples of
/// 8 (always true for mini-C arrays of `int`/`real`).
pub fn allocate_exact(candidates: &[SpmCandidate], capacity_bytes: u64) -> SpmAllocation {
    let words = (capacity_bytes / 8) as usize;
    let n = candidates.len();
    if n == 0 || words == 0 {
        return SpmAllocation {
            chosen: vec![],
            used_bytes: 0,
            saved_cycles: 0,
        };
    }
    // dp[w] = best gain with capacity w; keep choice bits per item.
    let mut dp = vec![0u64; words + 1];
    let mut take = vec![vec![false; words + 1]; n];
    for (i, c) in candidates.iter().enumerate() {
        let item_words = (c.size_bytes.div_ceil(8)) as usize;
        if item_words > words {
            continue;
        }
        for w in (item_words..=words).rev() {
            let cand = dp[w - item_words] + c.gain_cycles;
            if cand > dp[w] {
                dp[w] = cand;
                take[i][w] = true;
            }
        }
    }
    // Backtrack.
    let mut w = words;
    let mut chosen = Vec::new();
    let mut used = 0u64;
    let mut saved = 0u64;
    for i in (0..n).rev() {
        if take[i][w] {
            let c = &candidates[i];
            chosen.push(c.name.clone());
            used += c.size_bytes;
            saved += c.gain_cycles;
            w -= (c.size_bytes.div_ceil(8)) as usize;
        }
    }
    chosen.reverse();
    SpmAllocation {
        chosen,
        used_bytes: used,
        saved_cycles: saved,
    }
}

/// Greedy allocation by gain density (cycles saved per byte).
pub fn allocate_greedy(candidates: &[SpmCandidate], capacity_bytes: u64) -> SpmAllocation {
    let mut order: Vec<&SpmCandidate> = candidates.iter().filter(|c| c.size_bytes > 0).collect();
    order.sort_by(|a, b| {
        let da = a.gain_cycles as f64 / a.size_bytes as f64;
        let db = b.gain_cycles as f64 / b.size_bytes as f64;
        db.partial_cmp(&da).unwrap().then(a.name.cmp(&b.name))
    });
    let mut used = 0u64;
    let mut saved = 0u64;
    let mut chosen = Vec::new();
    for c in order {
        if used + c.size_bytes <= capacity_bytes {
            used += c.size_bytes;
            saved += c.gain_cycles;
            chosen.push(c.name.clone());
        }
    }
    SpmAllocation {
        chosen,
        used_bytes: used,
        saved_cycles: saved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(name: &str, size: u64, gain: u64) -> SpmCandidate {
        SpmCandidate {
            name: name.into(),
            size_bytes: size,
            gain_cycles: gain,
        }
    }

    #[test]
    fn exact_beats_or_matches_greedy() {
        // Classic greedy trap: one dense small item + one large item that
        // together overflow; optimal takes the two mid items.
        let cands = vec![
            cand("a", 512, 600),
            cand("b", 512, 600),
            cand("c", 1024, 1100),
            cand("d", 64, 150),
        ];
        for cap in [512u64, 1024, 1088, 2048] {
            let e = allocate_exact(&cands, cap);
            let g = allocate_greedy(&cands, cap);
            assert!(e.saved_cycles >= g.saved_cycles, "cap={cap}");
            assert!(e.used_bytes <= cap);
            assert!(g.used_bytes <= cap);
        }
    }

    #[test]
    fn exact_finds_known_optimum() {
        let cands = vec![cand("x", 600, 60), cand("y", 600, 60), cand("z", 1000, 95)];
        // Capacity 1200: exact takes x+y (120), greedy by density takes
        // x+y too (density 0.1 > 0.095) — craft a trap instead:
        let trap = vec![
            cand("dense", 700, 100),
            cand("a", 600, 80),
            cand("b", 600, 80),
        ];
        let e = allocate_exact(&trap, 1200);
        assert_eq!(e.saved_cycles, 160, "optimal skips the dense item");
        let g = allocate_greedy(&trap, 1200);
        assert_eq!(g.saved_cycles, 100, "greedy falls into the density trap");
        let _ = cands;
    }

    #[test]
    fn zero_capacity_places_nothing() {
        let cands = vec![cand("a", 8, 100)];
        assert!(allocate_exact(&cands, 0).chosen.is_empty());
        assert!(allocate_greedy(&cands, 0).chosen.is_empty());
    }

    #[test]
    fn everything_fits_when_capacity_is_large() {
        let cands = vec![cand("a", 100, 10), cand("b", 200, 20)];
        let e = allocate_exact(&cands, 1 << 20);
        assert_eq!(e.chosen.len(), 2);
        assert_eq!(e.saved_cycles, 30);
    }

    #[test]
    fn oversized_items_are_skipped() {
        let cands = vec![cand("huge", 1 << 20, 1_000_000), cand("small", 64, 10)];
        let e = allocate_exact(&cands, 1024);
        assert_eq!(e.chosen, vec!["small".to_string()]);
    }

    #[test]
    fn greedy_is_deterministic_under_ties() {
        let cands = vec![cand("b", 64, 64), cand("a", 64, 64)];
        let g1 = allocate_greedy(&cands, 64);
        let g2 = allocate_greedy(&cands, 64);
        assert_eq!(g1, g2);
        assert_eq!(g1.chosen, vec!["a".to_string()]);
    }
}
