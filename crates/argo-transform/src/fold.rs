//! Constant folding.
//!
//! Folds literal subexpressions bottom-up and applies safe algebraic
//! identities (`x+0`, `x*1`, `x*0` for ints). Folding loop bounds to
//! literals is what turns `for (i = 0; i < 4 * 16; …)` into a loop the
//! CFG can bound statically — a predictability enabler, not a speed
//! optimisation.

use crate::{Pass, TransformError};
use argo_ir::ast::*;

/// The constant-folding pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantFold;

impl Pass for ConstantFold {
    fn run(&self, program: &mut Program) -> Result<bool, TransformError> {
        let mut changed = false;
        for f in &mut program.functions {
            changed |= fold_block(&mut f.body);
        }
        Ok(changed)
    }

    fn name(&self) -> &'static str {
        "constant-fold"
    }
}

fn fold_block(b: &mut Block) -> bool {
    let mut changed = false;
    for s in &mut b.stmts {
        changed |= fold_stmt(s);
    }
    changed
}

fn fold_stmt(s: &mut Stmt) -> bool {
    match &mut s.kind {
        StmtKind::Decl { init, .. } => init.as_mut().is_some_and(fold_expr),
        StmtKind::Assign { target, value } => {
            let mut c = fold_expr(value);
            if let LValue::ArrayElem { indices, .. } = target {
                for i in indices {
                    c |= fold_expr(i);
                }
            }
            c
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            let mut c = fold_expr(cond);
            c |= fold_block(then_blk);
            c |= fold_block(else_blk);
            c
        }
        StmtKind::For { lo, hi, body, .. } => {
            let mut c = fold_expr(lo);
            c |= fold_expr(hi);
            c |= fold_block(body);
            c
        }
        StmtKind::While { cond, body, .. } => {
            let mut c = fold_expr(cond);
            c |= fold_block(body);
            c
        }
        StmtKind::Call { args, .. } => {
            let mut c = false;
            for a in args {
                c |= fold_expr(a);
            }
            c
        }
        StmtKind::Return { value } => value.as_mut().is_some_and(fold_expr),
    }
}

/// Folds an expression in place; returns `true` if anything changed.
pub fn fold_expr(e: &mut Expr) -> bool {
    let mut changed = false;
    if let Expr::ArrayElem { indices, .. } = e {
        for i in indices {
            changed |= fold_expr(i);
        }
        return changed;
    }
    if let Expr::Unary { arg, .. } | Expr::Cast { arg, .. } = e {
        changed |= fold_expr(arg);
    }
    if let Expr::Binary { lhs, rhs, .. } = e {
        changed |= fold_expr(lhs);
        changed |= fold_expr(rhs);
    }
    if let Expr::Call { args, .. } = e {
        for a in args {
            changed |= fold_expr(a);
        }
    }
    if let Some(folded) = try_fold(e) {
        *e = folded;
        return true;
    }
    changed
}

fn try_fold(e: &Expr) -> Option<Expr> {
    match e {
        Expr::Unary { op: UnOp::Neg, arg } => match **arg {
            Expr::IntLit(v) => Some(Expr::IntLit(v.wrapping_neg())),
            Expr::RealLit(v) => Some(Expr::RealLit(-v)),
            _ => None,
        },
        Expr::Unary { op: UnOp::Not, arg } => match **arg {
            Expr::BoolLit(v) => Some(Expr::BoolLit(!v)),
            _ => None,
        },
        Expr::Cast { to, arg } => match (&**arg, to) {
            (Expr::IntLit(v), argo_ir::Scalar::Real) => Some(Expr::RealLit(*v as f64)),
            (Expr::IntLit(v), argo_ir::Scalar::Int) => Some(Expr::IntLit(*v)),
            (Expr::RealLit(v), argo_ir::Scalar::Real) => Some(Expr::RealLit(*v)),
            _ => None,
        },
        Expr::Binary { op, lhs, rhs } => {
            // Literal-literal folding.
            if let (Expr::IntLit(a), Expr::IntLit(b)) = (&**lhs, &**rhs) {
                return fold_int(*op, *a, *b);
            }
            if let (Expr::RealLit(a), Expr::RealLit(b)) = (&**lhs, &**rhs) {
                return fold_real(*op, *a, *b);
            }
            if let (Expr::BoolLit(a), Expr::BoolLit(b)) = (&**lhs, &**rhs) {
                return fold_bool(*op, *a, *b);
            }
            // Identities (int only: float identities are unsafe for NaN).
            match (op, &**lhs, &**rhs) {
                (BinOp::Add, x, Expr::IntLit(0)) | (BinOp::Add, Expr::IntLit(0), x) => {
                    Some(x.clone())
                }
                (BinOp::Sub, x, Expr::IntLit(0)) => Some(x.clone()),
                (BinOp::Mul, x, Expr::IntLit(1)) | (BinOp::Mul, Expr::IntLit(1), x) => {
                    Some(x.clone())
                }
                (BinOp::Mul, _, Expr::IntLit(0)) | (BinOp::Mul, Expr::IntLit(0), _) => {
                    // Mini-C expressions are side-effect free, so dropping
                    // the other operand is safe.
                    Some(Expr::IntLit(0))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn fold_int(op: BinOp, a: i64, b: i64) -> Option<Expr> {
    Some(match op {
        BinOp::Add => Expr::IntLit(a.wrapping_add(b)),
        BinOp::Sub => Expr::IntLit(a.wrapping_sub(b)),
        BinOp::Mul => Expr::IntLit(a.wrapping_mul(b)),
        BinOp::Div => {
            if b == 0 {
                return None; // preserve runtime error
            }
            Expr::IntLit(a.wrapping_div(b))
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            Expr::IntLit(a.wrapping_rem(b))
        }
        BinOp::Eq => Expr::BoolLit(a == b),
        BinOp::Ne => Expr::BoolLit(a != b),
        BinOp::Lt => Expr::BoolLit(a < b),
        BinOp::Le => Expr::BoolLit(a <= b),
        BinOp::Gt => Expr::BoolLit(a > b),
        BinOp::Ge => Expr::BoolLit(a >= b),
        BinOp::And | BinOp::Or => return None,
    })
}

fn fold_real(op: BinOp, a: f64, b: f64) -> Option<Expr> {
    Some(match op {
        BinOp::Add => Expr::RealLit(a + b),
        BinOp::Sub => Expr::RealLit(a - b),
        BinOp::Mul => Expr::RealLit(a * b),
        BinOp::Div => Expr::RealLit(a / b),
        BinOp::Eq => Expr::BoolLit(a == b),
        BinOp::Ne => Expr::BoolLit(a != b),
        BinOp::Lt => Expr::BoolLit(a < b),
        BinOp::Le => Expr::BoolLit(a <= b),
        BinOp::Gt => Expr::BoolLit(a > b),
        BinOp::Ge => Expr::BoolLit(a >= b),
        _ => return None,
    })
}

fn fold_bool(op: BinOp, a: bool, b: bool) -> Option<Expr> {
    Some(match op {
        BinOp::And => Expr::BoolLit(a && b),
        BinOp::Or => Expr::BoolLit(a || b),
        BinOp::Eq => Expr::BoolLit(a == b),
        BinOp::Ne => Expr::BoolLit(a != b),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::parse::{parse_expr, parse_program};
    use argo_ir::printer::print_expr;

    fn fold_str(src: &str) -> String {
        let mut e = parse_expr(src).unwrap();
        fold_expr(&mut e);
        print_expr(&e)
    }

    #[test]
    fn folds_arithmetic() {
        assert_eq!(fold_str("1 + 2 * 3"), "7");
        assert_eq!(fold_str("4 * 16"), "64");
        assert_eq!(fold_str("10 / 3"), "3");
        assert_eq!(fold_str("1.5 * 2.0"), "3.0");
    }

    #[test]
    fn folds_comparisons_and_logic() {
        assert_eq!(fold_str("3 < 4"), "true");
        assert_eq!(fold_str("(1 == 2) || (3 <= 3)"), "true");
        assert_eq!(fold_str("!(1 < 2)"), "false");
    }

    #[test]
    fn applies_identities() {
        assert_eq!(fold_str("x + 0"), "x");
        assert_eq!(fold_str("1 * y"), "y");
        assert_eq!(fold_str("z * 0"), "0");
        assert_eq!(fold_str("x - 0"), "x");
    }

    #[test]
    fn preserves_division_by_zero() {
        assert_eq!(fold_str("1 / 0"), "(1 / 0)");
        assert_eq!(fold_str("1 % 0"), "(1 % 0)");
    }

    #[test]
    fn does_not_fold_float_identities() {
        // x + 0.0 must not fold: x could be -0.0 or NaN semantics-bearing.
        assert_eq!(fold_str("x + 0.0"), "(x + 0.0)");
    }

    #[test]
    fn folds_loop_bounds_in_program() {
        let mut p = parse_program(
            "void f(real a[64]) { int i; for (i = 0; i < 4 * 16; i = i + 1) { a[i] = 0.0; } }",
        )
        .unwrap();
        let changed = ConstantFold.run(&mut p).unwrap();
        assert!(changed);
        match &p.functions[0].body.stmts[1].kind {
            StmtKind::For { hi, .. } => assert_eq!(hi.as_int_const(), Some(64)),
            _ => panic!(),
        }
        // Second run: fixpoint.
        assert!(!ConstantFold.run(&mut p).unwrap());
    }

    #[test]
    fn folds_casts() {
        assert_eq!(fold_str("(real) 3"), "3.0");
        let mut e = parse_expr("(real) 3").unwrap();
        fold_expr(&mut e);
        assert_eq!(e, Expr::RealLit(3.0));
    }

    #[test]
    fn folds_nested_neg() {
        assert_eq!(fold_str("-(2 + 3)"), "-5");
    }
}
