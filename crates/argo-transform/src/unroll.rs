//! Full loop unrolling for small constant-trip loops.
//!
//! Unrolling replaces `for (i = lo; i < hi; i = i + s)` (literal bounds)
//! with one body copy per iteration, substituting the induction variable
//! by its literal value. For WCET analysis this removes all loop
//! bookkeeping and makes every iteration's path explicit — a tightness
//! win for short loops, at a code-size cost.

use crate::{subst_var_stmt, Pass, TransformError};
use argo_ir::ast::*;
use argo_ir::StmtId;

/// Pass that fully unrolls every loop with a literal trip count of at
/// most `max_trip`.
#[derive(Debug, Clone, Copy)]
pub struct FullUnroll {
    /// Largest trip count that will be unrolled.
    pub max_trip: u64,
}

impl Default for FullUnroll {
    fn default() -> FullUnroll {
        FullUnroll { max_trip: 8 }
    }
}

impl Pass for FullUnroll {
    fn run(&self, program: &mut Program) -> Result<bool, TransformError> {
        let mut changed = false;
        for f in &mut program.functions {
            changed |= unroll_block(&mut f.body, self.max_trip);
        }
        if changed {
            program.renumber();
        }
        Ok(changed)
    }

    fn name(&self) -> &'static str {
        "full-unroll"
    }
}

/// Unrolls the specific loop `loop_id` (anywhere in `func`), regardless of
/// trip count.
///
/// # Errors
///
/// Returns [`TransformError`] if the loop is missing or its bounds are
/// not integer literals.
pub fn unroll_loop(
    program: &mut Program,
    func: &str,
    loop_id: StmtId,
) -> Result<u64, TransformError> {
    let f = program
        .function_mut(func)
        .ok_or_else(|| TransformError::new(format!("no function `{func}`")))?;
    let mut result = Err(TransformError::new(format!(
        "no loop {loop_id} in `{func}`"
    )));
    unroll_targeted(&mut f.body, loop_id, &mut result);
    if result.is_ok() {
        program.renumber();
    }
    result
}

fn unroll_targeted(b: &mut Block, id: StmtId, result: &mut Result<u64, TransformError>) {
    let mut i = 0;
    while i < b.stmts.len() {
        if b.stmts[i].id == id {
            match expand(&b.stmts[i]) {
                Some(expansion) => {
                    let n = expansion.len() as u64;
                    b.stmts.splice(i..=i, expansion);
                    *result = Ok(n);
                }
                None => {
                    *result = Err(TransformError::new(
                        "loop bounds are not integer literals; cannot fully unroll",
                    ));
                }
            }
            return;
        }
        match &mut b.stmts[i].kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                unroll_targeted(then_blk, id, result);
                unroll_targeted(else_blk, id, result);
            }
            StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
                unroll_targeted(body, id, result);
            }
            _ => {}
        }
        i += 1;
    }
}

fn unroll_block(b: &mut Block, max_trip: u64) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i < b.stmts.len() {
        // Recurse first so inner loops unroll before outer ones are
        // considered.
        match &mut b.stmts[i].kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                changed |= unroll_block(then_blk, max_trip);
                changed |= unroll_block(else_blk, max_trip);
            }
            StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
                changed |= unroll_block(body, max_trip);
            }
            _ => {}
        }
        let trip = trip_count(&b.stmts[i]);
        if let Some(t) = trip {
            if t <= max_trip {
                if let Some(expansion) = expand(&b.stmts[i]) {
                    b.stmts.splice(i..=i, expansion);
                    changed = true;
                    continue; // re-examine at same index
                }
            }
        }
        i += 1;
    }
    changed
}

fn trip_count(s: &Stmt) -> Option<u64> {
    if let StmtKind::For { lo, hi, step, .. } = &s.kind {
        let (l, h) = (lo.as_int_const()?, hi.as_int_const()?);
        if h <= l {
            return Some(0);
        }
        return Some(((h - l) as u64).div_ceil(*step as u64));
    }
    None
}

/// Produces the unrolled statement list, or `None` for non-literal
/// bounds. The final induction-variable value is materialised with a
/// trailing assignment (the variable may be read after the loop).
fn expand(s: &Stmt) -> Option<Vec<Stmt>> {
    let StmtKind::For {
        var,
        lo,
        hi,
        step,
        body,
    } = &s.kind
    else {
        return None;
    };
    let (l, h) = (lo.as_int_const()?, hi.as_int_const()?);
    let mut out = Vec::new();
    let mut i = l;
    while i < h {
        for bs in &body.stmts {
            out.push(subst_var_stmt(bs, var, &Expr::IntLit(i)));
        }
        i += step;
    }
    out.push(Stmt::new(StmtKind::Assign {
        target: LValue::Var(var.clone()),
        value: Expr::IntLit(i),
    }));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::interp::{Interp, ScalarVal};
    use argo_ir::parse::parse_program;
    use argo_ir::validate::validate;

    #[test]
    fn unrolls_small_constant_loop() {
        let mut p = parse_program(
            "int main() { int s; int i; s = 0; \
             for (i=0;i<4;i=i+1) { s = s + i; } return s; }",
        )
        .unwrap();
        let changed = FullUnroll::default().run(&mut p).unwrap();
        assert!(changed);
        validate(&p).unwrap();
        // No loops remain.
        let has_loop = p.functions[0]
            .body
            .stmts
            .iter()
            .any(|s| matches!(s.kind, StmtKind::For { .. }));
        assert!(!has_loop);
        let v = Interp::new(&p).call_scalar("main", &[]).unwrap();
        assert_eq!(v, Some(ScalarVal::Int(6)));
    }

    #[test]
    fn respects_max_trip() {
        let mut p = parse_program(
            "int main() { int s; int i; s = 0; \
             for (i=0;i<100;i=i+1) { s = s + 1; } return s; }",
        )
        .unwrap();
        let changed = FullUnroll { max_trip: 8 }.run(&mut p).unwrap();
        assert!(!changed);
    }

    #[test]
    fn final_induction_value_is_preserved() {
        let mut p =
            parse_program("int main() { int i; for (i=0;i<5;i=i+1) { } return i; }").unwrap();
        FullUnroll::default().run(&mut p).unwrap();
        let v = Interp::new(&p).call_scalar("main", &[]).unwrap();
        assert_eq!(v, Some(ScalarVal::Int(5)));
    }

    #[test]
    fn unrolls_nested_inner_loop_only() {
        let mut p = parse_program(
            "int main(int n) { int s; int i; int j; s = 0; \
             for (i=0;i<n;i=i+1) { for (j=0;j<3;j=j+1) { s = s + 1; } } return s; }",
        )
        .unwrap();
        FullUnroll { max_trip: 4 }.run(&mut p).unwrap();
        validate(&p).unwrap();
        let v = Interp::new(&p)
            .call_scalar("main", &[ScalarVal::Int(5)])
            .unwrap();
        assert_eq!(v, Some(ScalarVal::Int(15)));
        // Outer loop must still exist (non-constant bound).
        let outer = p.functions[0]
            .body
            .stmts
            .iter()
            .any(|s| matches!(s.kind, StmtKind::For { .. }));
        assert!(outer);
    }

    #[test]
    fn zero_trip_loop_unrolls_to_final_assignment() {
        let mut p =
            parse_program("int main() { int i; for (i=7;i<7;i=i+1) { } return i; }").unwrap();
        FullUnroll::default().run(&mut p).unwrap();
        let v = Interp::new(&p).call_scalar("main", &[]).unwrap();
        assert_eq!(v, Some(ScalarVal::Int(7)));
    }

    #[test]
    fn targeted_unroll_ignores_max_trip() {
        let mut p = parse_program(
            "int main() { int s; int i; s = 0; \
             for (i=0;i<50;i=i+1) { s = s + 2; } return s; }",
        )
        .unwrap();
        let lid = p.functions[0]
            .body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::For { .. }))
            .unwrap()
            .id;
        unroll_loop(&mut p, "main", lid).unwrap();
        let v = Interp::new(&p).call_scalar("main", &[]).unwrap();
        assert_eq!(v, Some(ScalarVal::Int(100)));
    }

    #[test]
    fn targeted_unroll_rejects_nonliteral_bounds() {
        let mut p = parse_program(
            "int main(int n) { int s; int i; s = 0; \
             for (i=0;i<n;i=i+1) { s = s + 1; } return s; }",
        )
        .unwrap();
        let lid = p.functions[0]
            .body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::For { .. }))
            .unwrap()
            .id;
        assert!(unroll_loop(&mut p, "main", lid).is_err());
    }
}
