//! Index-set splitting (paper ref \[10\]) and strip-mining.
//!
//! *Index-set splitting* divides a loop's iteration range at a point `m`
//! into two loops `[lo, m)` and `[m, hi)`. Griebl/Feautrier/Lengauer use
//! it to isolate iterations with different control behaviour (e.g.
//! boundary handling) so each resulting loop has a simpler, more
//! analysable body — "complex control code \[10\] … may happen to be
//! perfectly viable … in a predictable performance context" (§ III-C).
//!
//! *Strip-mining* turns a loop into an outer loop over tiles and an inner
//! loop of at most `tile` iterations — the enabler for scratchpad blocking
//! of large arrays.

use crate::{fresh_name, taken_names, TransformError};
use argo_ir::ast::*;
use argo_ir::types::{Scalar, Type};
use argo_ir::StmtId;

/// Splits the top-level loop `loop_id` of `func` at iteration point `m`
/// (an expression over loop-invariant values).
///
/// # Errors
///
/// Returns [`TransformError`] if the function/loop is missing or the
/// statement is not a `for` loop.
pub fn split_index_set(
    program: &mut Program,
    func: &str,
    loop_id: StmtId,
    m: Expr,
) -> Result<(), TransformError> {
    let f = program
        .function_mut(func)
        .ok_or_else(|| TransformError::new(format!("no function `{func}`")))?;
    let pos = f
        .body
        .stmts
        .iter()
        .position(|s| s.id == loop_id)
        .ok_or_else(|| TransformError::new(format!("no top-level statement {loop_id}")))?;
    let stmt = f.body.stmts[pos].clone();
    let StmtKind::For {
        var,
        lo,
        hi,
        step,
        body,
    } = &stmt.kind
    else {
        return Err(TransformError::new(format!("{loop_id} is not a for loop")));
    };
    // Clamp the split point into [lo, hi] to keep both ranges well formed
    // for any runtime value: m' = imax(lo, imin(m, hi)).
    let clamped = Expr::Call {
        name: "imax".into(),
        args: vec![
            lo.clone(),
            Expr::Call {
                name: "imin".into(),
                args: vec![m, hi.clone()],
            },
        ],
    };
    let first = Stmt::new(StmtKind::For {
        var: var.clone(),
        lo: lo.clone(),
        hi: clamped.clone(),
        step: *step,
        body: body.clone(),
    });
    let second = Stmt::new(StmtKind::For {
        var: var.clone(),
        lo: clamped,
        hi: hi.clone(),
        step: *step,
        body: body.clone(),
    });
    f.body.stmts.splice(pos..=pos, [first, second]);
    program.renumber();
    Ok(())
}

/// Strip-mines the top-level loop `loop_id` of `func` with the given tile
/// size: `for (i = lo; i < hi)` becomes
/// `for (ii = lo; ii < hi; ii += tile) for (i = ii; i < imin(ii+tile, hi))`.
///
/// # Errors
///
/// Returns [`TransformError`] if the loop is missing or has a non-unit
/// step (tiling non-unit strides is out of scope).
pub fn strip_mine(
    program: &mut Program,
    func: &str,
    loop_id: StmtId,
    tile: u64,
) -> Result<(), TransformError> {
    if tile == 0 {
        return Err(TransformError::new("tile size must be positive"));
    }
    let f = program
        .function_mut(func)
        .ok_or_else(|| TransformError::new(format!("no function `{func}`")))?;
    let pos = f
        .body
        .stmts
        .iter()
        .position(|s| s.id == loop_id)
        .ok_or_else(|| TransformError::new(format!("no top-level statement {loop_id}")))?;
    let stmt = f.body.stmts[pos].clone();
    let StmtKind::For {
        var,
        lo,
        hi,
        step,
        body,
    } = &stmt.kind
    else {
        return Err(TransformError::new(format!("{loop_id} is not a for loop")));
    };
    if *step != 1 {
        return Err(TransformError::new(
            "only unit-step loops can be strip-mined",
        ));
    }
    let mut taken = taken_names(f);
    let outer_var = fresh_name(&mut taken, &format!("{var}__tile"));
    let inner_hi = Expr::Call {
        name: "imin".into(),
        args: vec![
            Expr::bin(
                BinOp::Add,
                Expr::var(outer_var.clone()),
                Expr::int(tile as i64),
            ),
            hi.clone(),
        ],
    };
    let inner = Stmt::new(StmtKind::For {
        var: var.clone(),
        lo: Expr::var(outer_var.clone()),
        hi: inner_hi,
        step: 1,
        body: body.clone(),
    });
    let outer = Stmt::new(StmtKind::For {
        var: outer_var.clone(),
        lo: lo.clone(),
        hi: hi.clone(),
        step: tile as i64,
        body: Block::of(vec![inner]),
    });
    let decl = Stmt::new(StmtKind::Decl {
        name: outer_var,
        ty: Type::Scalar(Scalar::Int),
        init: None,
    });
    f.body.stmts.splice(pos..=pos, [decl, outer]);
    program.renumber();
    Ok(())
}

/// Convenience: splits a loop so boundary iterations (first and last
/// `margin`) are isolated from the steady-state middle — the classic
/// index-set-splitting use case for stencils.
///
/// # Errors
///
/// Propagates [`split_index_set`] errors.
pub fn isolate_boundaries(
    program: &mut Program,
    func: &str,
    loop_id: StmtId,
    margin: i64,
) -> Result<(), TransformError> {
    // First split: [lo, lo+margin) and [lo+margin, hi).
    let (lo, hi) = {
        let f = program
            .function(func)
            .ok_or_else(|| TransformError::new(format!("no function `{func}`")))?;
        let s = f
            .body
            .stmts
            .iter()
            .find(|s| s.id == loop_id)
            .ok_or_else(|| TransformError::new(format!("no top-level statement {loop_id}")))?;
        match &s.kind {
            StmtKind::For { lo, hi, .. } => (lo.clone(), hi.clone()),
            _ => return Err(TransformError::new("not a for loop")),
        }
    };
    split_index_set(
        program,
        func,
        loop_id,
        Expr::bin(BinOp::Add, lo, Expr::int(margin)),
    )?;
    // The second of the two new loops is the steady state + tail; split it
    // again at hi - margin.
    let f = program.function(func).expect("exists");
    let second_id = {
        // The two loops produced sit adjacently; find the one whose hi
        // matches the original hi and whose lo is the clamped split.
        let mut ids: Vec<StmtId> = f
            .body
            .stmts
            .iter()
            .filter(|s| matches!(s.kind, StmtKind::For { .. }))
            .map(|s| s.id)
            .collect();
        ids.sort();
        *ids.last()
            .ok_or_else(|| TransformError::new("loops vanished"))?
    };
    split_index_set(
        program,
        func,
        second_id,
        Expr::bin(BinOp::Sub, hi, Expr::int(margin)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::interp::{ArgVal, ArrayData, Interp, NullHook};
    use argo_ir::parse::parse_program;
    use argo_ir::validate::validate;

    fn first_loop_id(p: &Program) -> StmtId {
        p.functions[0]
            .body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::For { .. }))
            .unwrap()
            .id
    }

    fn run_main(p: &Program, n: usize) -> Vec<f64> {
        let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let out = Interp::new(p)
            .call_full(
                "main",
                vec![ArgVal::Array(ArrayData::from_reals(&vals))],
                &mut NullHook,
            )
            .unwrap();
        out.arrays[0].1.to_reals()
    }

    #[test]
    fn split_preserves_semantics() {
        let src = "void main(real a[40]) { int i; \
             for (i=0;i<40;i=i+1) { a[i] = a[i] * 2.0; } }";
        let original = parse_program(src).unwrap();
        let mut p = original.clone();
        let lid = first_loop_id(&p);
        split_index_set(&mut p, "main", lid, Expr::int(13)).unwrap();
        validate(&p).unwrap();
        assert_eq!(run_main(&original, 40), run_main(&p, 40));
        // Two loops now.
        let loops = p.functions[0]
            .body
            .stmts
            .iter()
            .filter(|s| matches!(s.kind, StmtKind::For { .. }))
            .count();
        assert_eq!(loops, 2);
    }

    #[test]
    fn split_point_outside_range_is_clamped() {
        let src = "void main(real a[10]) { int i; \
             for (i=0;i<10;i=i+1) { a[i] = a[i] + 1.0; } }";
        for m in [-5i64, 0, 10, 99] {
            let original = parse_program(src).unwrap();
            let mut p = original.clone();
            let lid = first_loop_id(&p);
            split_index_set(&mut p, "main", lid, Expr::int(m)).unwrap();
            assert_eq!(run_main(&original, 10), run_main(&p, 10), "m={m}");
        }
    }

    #[test]
    fn strip_mine_preserves_semantics() {
        let src = "void main(real a[37]) { int i; \
             for (i=0;i<37;i=i+1) { a[i] = a[i] + 10.0; } }";
        let original = parse_program(src).unwrap();
        for tile in [1u64, 4, 8, 16, 64] {
            let mut p = original.clone();
            let lid = first_loop_id(&p);
            strip_mine(&mut p, "main", lid, tile).unwrap();
            validate(&p).unwrap();
            assert_eq!(run_main(&original, 37), run_main(&p, 37), "tile={tile}");
        }
    }

    #[test]
    fn strip_mine_structure() {
        let src = "void main(real a[32]) { int i; \
             for (i=0;i<32;i=i+1) { a[i] = 0.0; } }";
        let mut p = parse_program(src).unwrap();
        let lid = first_loop_id(&p);
        strip_mine(&mut p, "main", lid, 8).unwrap();
        // Outer loop with step 8 containing an inner unit loop.
        let outer = p.functions[0]
            .body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::For { .. }))
            .unwrap();
        match &outer.kind {
            StmtKind::For { step, body, .. } => {
                assert_eq!(*step, 8);
                assert!(matches!(body.stmts[0].kind, StmtKind::For { step: 1, .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn isolate_boundaries_gives_three_loops() {
        let src = "void main(real a[64]) { int i; \
             for (i=0;i<64;i=i+1) { a[i] = a[i] * 3.0; } }";
        let original = parse_program(src).unwrap();
        let mut p = original.clone();
        let lid = first_loop_id(&p);
        isolate_boundaries(&mut p, "main", lid, 2).unwrap();
        validate(&p).unwrap();
        let loops = p.functions[0]
            .body
            .stmts
            .iter()
            .filter(|s| matches!(s.kind, StmtKind::For { .. }))
            .count();
        assert_eq!(loops, 3);
        assert_eq!(run_main(&original, 64), run_main(&p, 64));
    }

    #[test]
    fn zero_tile_rejected() {
        let src = "void main(real a[8]) { int i; for (i=0;i<8;i=i+1) { a[i] = 0.0; } }";
        let mut p = parse_program(src).unwrap();
        let lid = first_loop_id(&p);
        assert!(strip_mine(&mut p, "main", lid, 0).is_err());
    }
}
