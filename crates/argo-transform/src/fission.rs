//! Loop distribution (fission) of DOALL loops.
//!
//! Splits a DOALL loop whose body consists of several statements into one
//! loop per statement group. After fission, each new loop can be chunked
//! or scheduled independently — useful when body statements touch
//! different arrays and would otherwise serialise behind one another.
//!
//! Only DOALL loops are distributed: for them, any body partitioning in
//! original order is legal because there are no loop-carried dependences
//! and intra-iteration dependences are preserved by keeping the statement
//! order across the new loops (statement `j` of iteration `i` still
//! executes after statement `j-1` of iteration `i` — in a *later* loop,
//! which is a legal reordering when no dependence crosses iterations).

use crate::{fresh_name, rename_var_stmt, taken_names, TransformError};
use argo_htg::deps::{classify_loop, LoopParallelism};
use argo_ir::ast::*;
use argo_ir::types::{Scalar, Type};
use argo_ir::StmtId;

/// Distributes the top-level DOALL loop `loop_id` of `func` into one loop
/// per body statement; returns the number of loops produced.
///
/// Body statements that are declarations (iteration-local temporaries) are
/// replicated into every produced loop that mentions them — the simple,
/// sound policy: they are replicated into **all** produced loops.
///
/// # Errors
///
/// Returns [`TransformError`] if the loop is missing, not DOALL, or has
/// fewer than two body statements.
pub fn distribute_loop(
    program: &mut Program,
    func: &str,
    loop_id: StmtId,
) -> Result<usize, TransformError> {
    let f = program
        .function_mut(func)
        .ok_or_else(|| TransformError::new(format!("no function `{func}`")))?;
    let pos = f
        .body
        .stmts
        .iter()
        .position(|s| s.id == loop_id)
        .ok_or_else(|| TransformError::new(format!("no top-level statement {loop_id}")))?;
    let stmt = f.body.stmts[pos].clone();
    let StmtKind::For {
        var,
        lo,
        hi,
        step,
        body,
    } = &stmt.kind
    else {
        return Err(TransformError::new(format!("{loop_id} is not a for loop")));
    };
    if classify_loop(&stmt) != LoopParallelism::Doall {
        return Err(TransformError::new("only DOALL loops can be distributed"));
    }
    // Payload statements: array writers / calls. Scalar-defining
    // statements (assignments to scalars, declarations) are replicated
    // into the backward slice of each payload — the "redundant
    // computation" trade-off of paper ref [9], perfectly acceptable in a
    // predictable-performance context.
    let is_scalar_def = |s: &Stmt| {
        matches!(
            s.kind,
            StmtKind::Decl { .. }
                | StmtKind::Assign {
                    target: LValue::Var(_),
                    ..
                }
        )
    };
    let payloads: Vec<usize> = body
        .stmts
        .iter()
        .enumerate()
        .filter(|(_, s)| !is_scalar_def(s))
        .map(|(i, _)| i)
        .collect();
    if payloads.len() < 2 {
        return Err(TransformError::new(
            "loop body has fewer than two statements",
        ));
    }

    let mut taken = taken_names(f);
    let mut new_stmts: Vec<Stmt> = Vec::new();
    let mut loops: Vec<Stmt> = Vec::new();
    for (idx, &pi) in payloads.iter().enumerate() {
        let iv = fresh_name(&mut taken, &format!("{var}__f{idx}"));
        new_stmts.push(Stmt::new(StmtKind::Decl {
            name: iv.clone(),
            ty: Type::Scalar(Scalar::Int),
            init: None,
        }));
        // Backward slice: scalar-def statements before the payload whose
        // written scalar is (transitively) read by the payload.
        let payload = &body.stmts[pi];
        let (mut needed, _) = argo_ir::visit::stmt_rw(payload);
        let mut include = vec![false; pi];
        loop {
            let mut changed = false;
            for j in (0..pi).rev() {
                if include[j] || !is_scalar_def(&body.stmts[j]) {
                    continue;
                }
                let (r, w) = argo_ir::visit::stmt_rw(&body.stmts[j]);
                if w.iter().any(|v| needed.contains(v)) {
                    include[j] = true;
                    needed.extend(r);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut body_stmts: Vec<Stmt> = Vec::new();
        for (j, inc) in include.iter().enumerate() {
            if *inc {
                body_stmts.push(rename_var_stmt(&body.stmts[j], var, &iv));
            }
        }
        body_stmts.push(rename_var_stmt(payload, var, &iv));
        // Replicated locals must get per-loop fresh names, or the
        // function would declare them twice.
        let local_decls: Vec<String> = body_stmts
            .iter()
            .filter_map(|s| match &s.kind {
                StmtKind::Decl { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        for d in local_decls {
            let fresh = fresh_name(&mut taken, &format!("{d}__f{idx}"));
            body_stmts = body_stmts
                .iter()
                .map(|s| rename_var_stmt(s, &d, &fresh))
                .collect();
        }
        loops.push(Stmt::new(StmtKind::For {
            var: iv,
            lo: lo.clone(),
            hi: hi.clone(),
            step: *step,
            body: Block::of(body_stmts),
        }));
    }
    let n = loops.len();
    new_stmts.extend(loops);
    let f = program.function_mut(func).expect("checked above");
    f.body.stmts.splice(pos..=pos, new_stmts);
    program.renumber();
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::interp::{ArgVal, ArrayData, Interp, NullHook};
    use argo_ir::parse::parse_program;
    use argo_ir::validate::validate;

    fn first_loop_id(p: &Program) -> StmtId {
        p.functions[0]
            .body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::For { .. }))
            .unwrap()
            .id
    }

    #[test]
    fn distributes_independent_statements() {
        let src = "void main(real a[32], real b[32], real c[32]) { int i; \
             for (i=0;i<32;i=i+1) { b[i] = a[i] * 2.0; c[i] = a[i] + 1.0; } }";
        let original = parse_program(src).unwrap();
        let mut p = original.clone();
        let lid = first_loop_id(&p);
        let n = distribute_loop(&mut p, "main", lid).unwrap();
        assert_eq!(n, 2);
        validate(&p).unwrap();
        // Semantics preserved.
        let args = || {
            vec![
                ArgVal::Array(ArrayData::from_reals(
                    &(0..32).map(|i| i as f64).collect::<Vec<_>>(),
                )),
                ArgVal::Array(ArrayData::from_reals(&[0.0; 32])),
                ArgVal::Array(ArrayData::from_reals(&[0.0; 32])),
            ]
        };
        let o1 = Interp::new(&original)
            .call_full("main", args(), &mut NullHook)
            .unwrap();
        let o2 = Interp::new(&p)
            .call_full("main", args(), &mut NullHook)
            .unwrap();
        assert_eq!(o1.arrays, o2.arrays);
    }

    #[test]
    fn replicates_local_decls() {
        let src = "void main(real a[16], real b[16], real c[16]) { int i; \
             for (i=0;i<16;i=i+1) { real t; t = a[i] * 3.0; b[i] = t; c[i] = t + 1.0; } }";
        let original = parse_program(src).unwrap();
        let mut p = original.clone();
        // Two array-writing payloads; `t`'s definition is replicated into
        // both loops (redundant computation, ref [9]).
        let lid = first_loop_id(&p);
        let n = distribute_loop(&mut p, "main", lid).unwrap();
        assert_eq!(n, 2);
        validate(&p).unwrap();
        let args = || {
            vec![
                ArgVal::Array(ArrayData::from_reals(
                    &(0..16).map(|i| 1.0 + i as f64).collect::<Vec<_>>(),
                )),
                ArgVal::Array(ArrayData::from_reals(&[0.0; 16])),
                ArgVal::Array(ArrayData::from_reals(&[0.0; 16])),
            ]
        };
        let o1 = Interp::new(&original)
            .call_full("main", args(), &mut NullHook)
            .unwrap();
        let o2 = Interp::new(&p)
            .call_full("main", args(), &mut NullHook)
            .unwrap();
        assert_eq!(o1.arrays, o2.arrays);
    }

    #[test]
    fn rejects_sequential_loop() {
        let src = "void main(real b[16]) { int i; \
             for (i=1;i<16;i=i+1) { b[i] = b[i-1]; b[i] = b[i] + 1.0; } }";
        let mut p = parse_program(src).unwrap();
        let lid = first_loop_id(&p);
        let err = distribute_loop(&mut p, "main", lid).unwrap_err();
        assert!(err.msg.contains("DOALL"));
    }

    #[test]
    fn rejects_single_statement_body() {
        let src = "void main(real b[16]) { int i; for (i=0;i<16;i=i+1) { b[i] = 0.0; } }";
        let mut p = parse_program(src).unwrap();
        let lid = first_loop_id(&p);
        let err = distribute_loop(&mut p, "main", lid).unwrap_err();
        assert!(err.msg.contains("fewer than two"));
    }
}
