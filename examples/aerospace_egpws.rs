//! Aerospace use case (paper § IV-A): Enhanced Ground Proximity Warning
//! System, compiled by the ARGO flow for both target platform families and
//! validated on the simulator.
//!
//! ```sh
//! cargo run --example aerospace_egpws
//! ```

use argo_adl::Platform;
use argo_core::{Fingerprintable, ToolchainConfig, Toolflow};
use argo_sim::{simulate, SimConfig, SimMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let uc = argo_apps::egpws::use_case(2026);
    println!("=== EGPWS on two ARGO target platforms ===\n");

    for platform in [Platform::xentium_manycore(4), Platform::kit_tile_noc(2, 2)] {
        let r = Toolflow::new(uc.program.clone(), uc.entry)
            .platform(&platform)
            .config(ToolchainConfig::default())
            .run()?;
        let wc = simulate(
            &r.parallel,
            &platform,
            uc.args.clone(),
            &SimConfig::default(),
        )?;
        let avg = simulate(
            &r.parallel,
            &platform,
            uc.args.clone(),
            &SimConfig {
                mode: SimMode::Random { seed: 1 },
            },
        )?;
        println!(
            "platform {:<18} (fingerprint {})",
            platform.name,
            platform.fingerprint()
        );
        println!("  sequential WCET bound : {:>9}", r.sequential_bound);
        println!("  parallel   WCET bound : {:>9}", r.system.bound);
        println!("  guaranteed speedup    : {:>9.2}x", r.wcet_speedup());
        println!("  observed worst-case   : {:>9}", wc.cycles);
        println!("  observed average-case : {:>9}", avg.cycles);
        println!(
            "  WCET gap (bound/avg)  : {:>9.2}x\n",
            r.system.bound as f64 / avg.cycles as f64
        );
        assert!(wc.cycles <= r.system.bound);

        // Show the alerts the parallel run produced.
        let alerts = wc
            .outputs
            .iter()
            .find(|(n, _)| n == "alert")
            .expect("alert output")
            .1
            .to_reals();
        let counts = [0.0, 1.0, 2.0, 3.0].map(|l| alerts.iter().filter(|&&a| a == l).count());
        println!(
            "  path points: {} clear, {} caution, {} warning, {} pull-up\n",
            counts[0], counts[1], counts[2], counts[3]
        );
    }
    Ok(())
}
