//! Industrial image processing use case (paper § IV-B): the POLKA
//! polarization camera pipeline, built twice — once from the embedded
//! mini-C kernel and once from an Xcos-like dataflow model — to show both
//! ARGO frontends feeding the same tool chain.
//!
//! ```sh
//! cargo run --example polka_inspection
//! ```

use argo_adl::Platform;
use argo_core::{ToolchainConfig, Toolflow};
use argo_ir::interp::{ArgVal, ArrayData};
use argo_model::{Model, ReduceOp};
use argo_sim::{simulate, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::xentium_manycore(4);

    // --- Frontend 1: the full mini-C POLKA kernel.
    let uc = argo_apps::polka::use_case(7);
    let r = Toolflow::new(uc.program.clone(), uc.entry)
        .platform(&platform)
        .config(ToolchainConfig::default())
        .run()?;
    let sim = simulate(&r.parallel, &platform, uc.args, &SimConfig::default())?;
    let mask = sim
        .outputs
        .iter()
        .find(|(n, _)| n == "mask")
        .expect("mask")
        .1
        .to_reals();
    println!("POLKA (mini-C frontend) on {}:", platform.name);
    println!(
        "  parallel WCET bound {:>8}  observed {:>8}",
        r.system.bound, sim.cycles
    );
    println!("  guaranteed speedup  {:>8.2}x", r.wcet_speedup());
    println!(
        "  stress superpixels detected: {}",
        mask.iter().filter(|&&m| m == 1.0).count()
    );
    assert!(sim.cycles <= r.system.bound);

    // --- Frontend 2: a model-based (Xcos-like) intensity pipeline.
    //     Blocks written in the Scilab-like behaviour language, lowered to
    //     the same IR and compiled by the same flow.
    let mut model = Model::new("intensity_screen", 256);
    let frame = model.add_input("frame");
    let normalised = model.add_map("normalised", "u / 1000.0", frame)?;
    let smoothed = model.add_stencil3("smoothed", "(u1 + u2 + u3) / 3.0", normalised)?;
    let contrast = model.add_zip("contrast", "fabs(u1 - u2)", normalised, smoothed)?;
    let peak = model.add_reduce("peak", ReduceOp::Max, contrast);
    model.mark_output(contrast);
    model.mark_output(peak);
    let program = model.lower()?;

    let rm = Toolflow::new(program, "intensity_screen")
        .platform(&platform)
        .config(ToolchainConfig::default())
        .run()?;
    let raw = argo_apps::polka::synthetic_frame(7, 2);
    let head: Vec<f64> = raw.iter().take(256).copied().collect();
    let args = vec![
        ArgVal::Array(ArrayData::from_reals(&head)),
        ArgVal::Array(ArrayData::from_reals(&[0.0; 256])),
        ArgVal::Array(ArrayData::from_reals(&[0.0])),
    ];
    let simm = simulate(&rm.parallel, &platform, args, &SimConfig::default())?;
    let peak_v = simm
        .outputs
        .iter()
        .find(|(n, _)| n == "peak_out")
        .expect("peak")
        .1
        .to_reals()[0];
    println!("\nPOLKA (model-based frontend):");
    println!(
        "  parallel WCET bound {:>8}  observed {:>8}",
        rm.system.bound, simm.cycles
    );
    println!("  guaranteed speedup  {:>8.2}x", rm.wcet_speedup());
    println!("  peak local contrast: {peak_v:.4}");
    assert!(simm.cycles <= rm.system.bound);
    Ok(())
}
