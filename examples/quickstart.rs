//! Quickstart: drive the complete ARGO flow (paper Fig. 1) on a small
//! mini-C program through a [`Toolflow`] session — the typed, observable
//! driver API — then print the tool-chain report, the per-core parallel
//! pseudo-C, and the simulated validation run.
//!
//! The session is built with a fluent builder and runs the staged
//! pipeline (`frontend → seed-costs → backend`); the attached
//! `TraceObserver` streams per-stage progress (artifact fingerprints,
//! timings, feedback-round snapshots) to stderr, so stdout keeps only
//! the report. The legacy one-call form is still available as
//! `argo_core::compile(program, "main", &platform, &cfg)` — a thin
//! wrapper over a default session.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use argo_adl::Platform;
use argo_core::{Artifact, ToolchainConfig, Toolflow, TraceObserver};
use argo_ir::interp::{ArgVal, ArrayData};
use argo_sim::{simulate, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The application: a compute-heavy map + reduction in mini-C.
    let src = r#"
        real main(real a[256], real b[256]) {
            real s; int i;
            s = 0.0;
            for (i = 0; i < 256; i = i + 1) {
                b[i] = sqrt(a[i]) * 2.0 + sin(a[i]);
            }
            for (i = 0; i < 256; i = i + 1) { s = s + b[i]; }
            return s;
        }
    "#;
    let program = argo_ir::parse::parse_program(src)?;

    // 2. The platform: a 4-core Xentium-style DSP with a WRR bus,
    //    described by the ADL object model.
    let platform = Platform::xentium_manycore(4);

    // 3. Run the tool chain as an observed session, stage by stage:
    //    transforms → HTG → schedule → parallel model → code-level +
    //    system-level WCET, with iterative feedback traced to stderr.
    let trace = TraceObserver::stderr();
    let flow = Toolflow::new(program, "main")
        .platform(&platform)
        .config(ToolchainConfig::default())
        .observer(&trace);
    let artifact = flow.run_frontend()?;
    eprintln!(
        "[quickstart] frontend artifact fingerprint: {}",
        artifact.fingerprint()
    );
    let costs = flow.run_seed_costs(&artifact)?;
    let result = flow.run_backend(artifact, Some(&costs))?;
    println!("{}", result.report());

    // 4. Inspect the explicitly parallel program (per-core pseudo-C).
    println!("{}", argo_parir::emit::emit_pseudo_c(&result.parallel));

    // 5. Validate on the platform simulator: observed ≤ bound.
    let input: Vec<f64> = (0..256).map(|i| 1.0 + i as f64 * 0.01).collect();
    let args = vec![
        ArgVal::Array(ArrayData::from_reals(&input)),
        ArgVal::Array(ArrayData::from_reals(&[0.0; 256])),
    ];
    let sim = simulate(&result.parallel, &platform, args, &SimConfig::default())?;
    println!("simulated (worst-case ops): {:>9} cycles", sim.cycles);
    println!(
        "system-level WCET bound:    {:>9} cycles",
        result.system.bound
    );
    println!(
        "bound / observed tightness: {:>9.2}",
        result.system.bound as f64 / sim.cycles as f64
    );
    assert!(sim.cycles <= result.system.bound, "soundness violated!");
    println!("OK: observed ≤ bound (soundness holds)");
    Ok(())
}
