//! Quickstart client for the `argo-serve` daemon.
//!
//! Boots an in-process daemon (or connects to one you started with
//! `cargo run --release --bin argo-serve -- --listen 127.0.0.1:4100`),
//! then walks the wire protocol: a `compile` with streamed progress,
//! the *same* compile again (answered without pipeline stages once a
//! store is attached), an `explore` sweep, and `stats`.
//!
//! ```sh
//! cargo run --example serve_client                      # in-process
//! cargo run --example serve_client -- 127.0.0.1:4100    # external daemon
//! ```
//!
//! See the `argo_serve` crate docs for the full frame reference.

use argo_serve::{Client, Listener, ServeConfig, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Connect to the daemon named on the command line, or boot one
    // in-process on an OS-assigned port.
    let external = std::env::args().nth(1);
    let (addr, server) = match &external {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = Server::start(
                Listener::tcp("127.0.0.1:0")?,
                argo_dse::Explorer::new(),
                ServeConfig::default(),
            )?;
            (server.addr().to_string(), Some(server))
        }
    };
    let mut client = Client::connect_tcp(&addr)?;
    println!("connected to argo-serve at {addr}");

    // 1. Compile one configuration of the EGPWS use case, streaming
    //    stage progress. Every request is one JSON line; every frame
    //    that comes back echoes our `id`.
    let reply = client.request(
        r#"{"id": 1, "kind": "compile", "progress": true, "app": "egpws", "cores": 4, "scheduler": "list"}"#,
    )?;
    println!("\n-- compile: {} progress frames --", reply.progress.len());
    for frame in &reply.progress {
        println!("  {frame}");
    }
    println!("  {}", reply.terminal);

    // 2. The identical request again. With a shared store attached
    //    (`--store`), the daemon answers from the point archive: zero
    //    pipeline stages, zero progress frames, byte-identical body.
    let again = client.request(
        r#"{"id": 2, "kind": "compile", "progress": true, "app": "egpws", "cores": 4, "scheduler": "list"}"#,
    )?;
    println!(
        "\n-- repeat: {} progress frames (0 = served without the pipeline) --",
        again.progress.len()
    );

    // 3. A small exploration sweep; progress arrives as done/total.
    let sweep = client.request(
        r#"{"id": 3, "kind": "explore", "progress": true, "apps": ["egpws"], "cores": [2, 4], "schedulers": ["list", "anneal"]}"#,
    )?;
    println!("\n-- explore --");
    println!("  {}", sweep.terminal);

    // 4. Server counters: sessions, single-flight dedupe, cache tiers.
    let stats = client.request(r#"{"id": 4, "kind": "stats"}"#)?;
    println!("\n-- stats --");
    println!("  {}", stats.terminal);

    // Shut the in-process daemon down; leave an external one running.
    if let Some(server) = server {
        client.request(r#"{"id": 5, "kind": "shutdown"}"#)?;
        server.join();
        println!("\ndaemon shut down");
    }
    Ok(())
}
