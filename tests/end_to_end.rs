//! Cross-crate integration tests: the two global contracts of the
//! reproduction.
//!
//! 1. **Functional correctness** — the parallelized program computes
//!    bitwise-identical results to the sequential reference, for every
//!    use case, platform and core count.
//! 2. **Soundness** — the simulator's observed cycle count never exceeds
//!    the system-level WCET bound, in worst-case and random timing modes,
//!    on bus and NoC platforms, under every arbitration policy.

use argo_adl::{Arbitration, Platform};
use argo_core::{compile, CollectingObserver, Stage, ToolchainConfig, Toolflow};
use argo_sim::{sequential_reference, simulate, SimConfig, SimMode};
use argo_wcet::system::MhpMode;

fn check_use_case(uc: &argo_apps::UseCase, platform: &Platform, cfg: &ToolchainConfig) {
    // Drive the observed session API; every pipeline stage must emit a
    // well-nested (start, finish) event pair.
    let obs = CollectingObserver::new();
    let r = Toolflow::new(uc.program.clone(), uc.entry)
        .platform(platform)
        .config(cfg.clone())
        .observer(&obs)
        .run()
        .unwrap_or_else(|e| panic!("{}: {e}", uc.name));
    assert!(
        obs.well_nested(),
        "{}: stage events not well-nested",
        uc.name
    );
    assert_eq!(obs.finished_count(Stage::Frontend), 1, "{}", uc.name);
    assert_eq!(obs.finished_count(Stage::Backend), 1, "{}", uc.name);
    assert_eq!(
        obs.feedback_rounds().len() as u32,
        r.feedback_iterations,
        "{}: one snapshot per feedback round",
        uc.name
    );
    r.parallel.validate().unwrap();

    // Functional oracle: parallel result == sequential result. Note the
    // sequential reference runs the ORIGINAL program; the parallel one
    // runs the transformed (chunked) program.
    let reference = sequential_reference(&uc.program, uc.entry, uc.args.clone()).unwrap();
    let sim = simulate(
        &r.parallel,
        platform,
        uc.args.clone(),
        &SimConfig::default(),
    )
    .unwrap_or_else(|e| panic!("{}: {e}", uc.name));
    assert_eq!(
        reference.len(),
        sim.outputs.len(),
        "{}: output arity differs",
        uc.name
    );
    for ((rn, rd), (sn, sd)) in reference.iter().zip(&sim.outputs) {
        assert_eq!(rn, sn, "{}: output order", uc.name);
        assert_eq!(
            rd, sd,
            "{}: array `{rn}` differs from sequential reference",
            uc.name
        );
    }

    // Soundness: observed ≤ bound, worst-case mode.
    assert!(
        sim.cycles <= r.system.bound,
        "{}: observed {} exceeds WCET bound {} on {}",
        uc.name,
        sim.cycles,
        r.system.bound,
        platform.name
    );

    // Random (average-case) runs are also bounded. Note: they are NOT
    // asserted ≤ the worst-case-mode run — slot-aligned arbiters (TDMA)
    // exhibit genuine timing anomalies where locally faster operations
    // shift requests past their slot. The *bound* must hold regardless.
    for seed in [1u64, 2, 3] {
        let rnd = simulate(
            &r.parallel,
            platform,
            uc.args.clone(),
            &SimConfig {
                mode: SimMode::Random { seed },
            },
        )
        .unwrap();
        assert!(
            rnd.cycles <= r.system.bound,
            "{}: random run exceeds bound",
            uc.name
        );
    }
}

#[test]
fn use_cases_on_quad_wrr_bus() {
    let platform = Platform::xentium_manycore(4);
    for uc in argo_apps::all_use_cases(42) {
        check_use_case(&uc, &platform, &ToolchainConfig::default());
    }
}

#[test]
fn use_cases_on_dual_core() {
    let platform = Platform::xentium_manycore(2);
    for uc in argo_apps::all_use_cases(7) {
        check_use_case(&uc, &platform, &ToolchainConfig::default());
    }
}

#[test]
fn use_cases_on_kit_noc() {
    let platform = Platform::kit_tile_noc(2, 2);
    for uc in argo_apps::all_use_cases(42) {
        check_use_case(&uc, &platform, &ToolchainConfig::default());
    }
}

#[test]
fn soundness_under_every_bus_arbitration() {
    let uc = &argo_apps::all_use_cases(11)[2]; // POLKA: densest traffic
    for arb in [
        Arbitration::Wrr {
            weights: vec![1; 4],
            slot_cycles: 4,
        },
        Arbitration::Tdma {
            slot_cycles: 12,
            total_slots: 4,
        },
        Arbitration::FixedPriority {
            priorities: vec![0, 1, 2, 3],
        },
    ] {
        let platform = Platform::generic_bus(4, arb.clone());
        check_use_case(uc, &platform, &ToolchainConfig::default());
    }
}

#[test]
fn soundness_for_timing_independent_mhp_modes() {
    // Naive and static MHP are sound for any dispatch timing; window MHP
    // additionally requires time-triggered release and is validated via
    // the bound-ordering test in `argo-wcet` instead.
    let platform = Platform::xentium_manycore(4);
    let uc = &argo_apps::all_use_cases(5)[0]; // EGPWS
    for mhp in [MhpMode::Naive, MhpMode::Static] {
        let cfg = ToolchainConfig {
            mhp,
            ..Default::default()
        };
        check_use_case(uc, &platform, &cfg);
    }
}

#[test]
fn chunking_off_still_sound_and_correct() {
    let platform = Platform::xentium_manycore(4);
    let cfg = ToolchainConfig {
        chunk_loops: false,
        ..Default::default()
    };
    for uc in argo_apps::all_use_cases(9) {
        check_use_case(&uc, &platform, &cfg);
    }
}

#[test]
fn parallel_wcet_beats_sequential_on_polka() {
    // POLKA's superpixel loops are DOALL: the guaranteed WCET must drop.
    let uc = &argo_apps::all_use_cases(42)[2];
    let platform = Platform::xentium_manycore(4);
    let r = compile(
        uc.program.clone(),
        uc.entry,
        &platform,
        &ToolchainConfig::default(),
    )
    .unwrap();
    assert!(
        r.wcet_speedup() > 1.2,
        "POLKA guaranteed speedup too small: {:.2}",
        r.wcet_speedup()
    );
}

#[test]
fn cache_platform_is_sound_but_less_tight() {
    // § III-B ablation: same program, SPM vs cache platform. Both sound;
    // the cache bound is (much) further from the observation.
    let uc = &argo_apps::all_use_cases(3)[2]; // POLKA
    let spm = Platform::xentium_manycore(2);
    let cached = Platform::xentium_manycore(2).with_caches(argo_adl::CacheConfig::small());
    let cfg = ToolchainConfig::default();

    let r_spm = compile(uc.program.clone(), uc.entry, &spm, &cfg).unwrap();
    let sim_spm = simulate(
        &r_spm.parallel,
        &spm,
        uc.args.clone(),
        &SimConfig::default(),
    )
    .unwrap();
    assert!(sim_spm.cycles <= r_spm.system.bound);

    let r_c = compile(uc.program.clone(), uc.entry, &cached, &cfg).unwrap();
    let sim_c = simulate(
        &r_c.parallel,
        &cached,
        uc.args.clone(),
        &SimConfig::default(),
    )
    .unwrap();
    assert!(sim_c.cycles <= r_c.system.bound, "cache bound unsound");

    let tight_spm = r_spm.system.bound as f64 / sim_spm.cycles.max(1) as f64;
    let tight_cache = r_c.system.bound as f64 / sim_c.cycles.max(1) as f64;
    assert!(
        tight_cache > tight_spm,
        "cache analysis should be less tight: spm {tight_spm:.2} vs cache {tight_cache:.2}"
    );
}

#[test]
fn observed_contention_waits_within_analysis_budget() {
    let uc = &argo_apps::all_use_cases(42)[2];
    let platform = Platform::xentium_manycore(4);
    let r = compile(
        uc.program.clone(),
        uc.entry,
        &platform,
        &ToolchainConfig::default(),
    )
    .unwrap();
    let sim = simulate(
        &r.parallel,
        &platform,
        uc.args.clone(),
        &SimConfig::default(),
    )
    .unwrap();
    // Total inflation budget the analysis reserved:
    let budget: u64 = (0..r.iso_costs.len())
        .map(|t| r.system.task_wcet[t] - r.system.iso_wcet[t])
        .sum();
    assert!(
        sim.bus_wait_cycles <= budget + r.system.bound,
        "observed waits {} far exceed analysis budget {budget}",
        sim.bus_wait_cycles
    );
}
