//! Golden tests pinning the verifier's rendered report byte-identical
//! for the three use cases across all MHP modes (satellite of PR 6).
//!
//! Diagnostic *stability* is part of the verifier's contract: the same
//! program under the same mode must produce the identical report on
//! every run and on every thread count, so CI gates and DSE failure
//! classes never flap. Each combination is rendered twice per test run
//! (fresh pipeline each time) and must agree with itself before being
//! compared against the pinned golden.
//!
//! Regenerate (only after an *intentional* behaviour change) with:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_verify
//! ```

use argo_adl::Platform;
use argo_core::{ToolchainConfig, Toolflow};
use argo_verify::{verify_backend, VerifyConfig};
use argo_wcet::system::MhpMode;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_or_update(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden `{}` ({e}); run with GOLDEN_UPDATE=1", name));
    assert_eq!(
        expected, actual,
        "verify report for `{name}` drifted from the pinned golden"
    );
}

fn rendered(name: &str, mhp: MhpMode, platform: &Platform) -> String {
    let uc = argo_apps::all_use_cases(42)
        .into_iter()
        .find(|u| u.name == name)
        .expect("known use case");
    let cfg = ToolchainConfig {
        mhp,
        ..Default::default()
    };
    let r = Toolflow::new(uc.program, uc.entry)
        .platform(platform)
        .config(cfg)
        .run()
        .expect("compile");
    let report = verify_backend(&r, platform, &VerifyConfig { mhp, allow: vec![] });
    report.render_text()
}

#[test]
fn verify_reports_match_goldens_and_are_run_to_run_stable() {
    let platform = Platform::xentium_manycore(4);
    for app in ["egpws", "weaa", "polka"] {
        for mhp in [MhpMode::Naive, MhpMode::Static, MhpMode::Windows] {
            let first = rendered(app, mhp, &platform);
            let second = rendered(app, mhp, &platform);
            assert_eq!(first, second, "{app} [{mhp}] not run-to-run stable");
            check_or_update(&format!("verify_{app}_{mhp}.txt"), &first);
        }
    }
}
