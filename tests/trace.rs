//! Integration tests for the `argo-trace` observability layer: span
//! well-nestedness under arbitrary trees and ring eviction (proptest),
//! histogram quantiles against a sorted-vector reference, and a
//! Chrome-trace export of a real pipeline run parsed with the
//! `argo-serve` JSON reader.

use argo_trace::{chrome_trace, Histogram, Tracer, LATENCY_US_BUCKETS};
use proptest::prelude::*;
use std::collections::HashMap;

/// Replays a depth script against a tracer: each entry `d` closes open
/// spans down to depth `d`, then opens one more. Produces an arbitrary
/// well-nested span tree, one record per entry.
fn replay(tracer: &Tracer, depths: &[u8]) {
    let mut stack: Vec<argo_trace::Span<'_>> = Vec::new();
    for &d in depths {
        // Close innermost-first, like the RAII scopes the tracer is
        // used with (Vec::truncate would drop outer spans first).
        let keep = d as usize % (stack.len() + 1);
        while stack.len() > keep {
            stack.pop();
        }
        stack.push(tracer.span(format!("depth-{}", stack.len())));
    }
    while stack.pop().is_some() {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the nesting script, surviving records are well-nested:
    /// any present parent fully contains its present children, and
    /// eviction only ever removes *older* records (a present parent is
    /// never younger than its child).
    #[test]
    fn spans_stay_well_nested_under_ring_eviction(
        depths in proptest::collection::vec(0u8..6, 1..200),
    ) {
        const CAPACITY: usize = 32;
        let tracer = Tracer::new(CAPACITY);
        tracer.enable();
        replay(&tracer, &depths);

        let records = tracer.snapshot();
        prop_assert!(records.len() <= CAPACITY);
        prop_assert_eq!(
            tracer.evicted(),
            depths.len().saturating_sub(CAPACITY) as u64,
            "every record beyond capacity evicts exactly one"
        );

        let mut last_seq = None;
        let by_id: HashMap<u64, &argo_trace::SpanRecord> =
            records.iter().map(|r| (r.id, r)).collect();
        for r in &records {
            if let Some(prev) = last_seq {
                prop_assert!(r.seq > prev, "snapshot is seq-sorted");
            }
            last_seq = Some(r.seq);
            if r.parent == 0 {
                continue; // root
            }
            let Some(parent) = by_id.get(&r.parent) else {
                // Parent evicted: children complete (and are pushed)
                // before parents, so an evicted parent would have to be
                // *younger* than its surviving child — impossible under
                // oldest-first eviction unless the parent is still open
                // (never pushed). Treating the child as a root is safe.
                continue;
            };
            prop_assert!(parent.seq > r.seq, "children close before parents");
            prop_assert!(parent.start_ns <= r.start_ns, "parent starts first");
            prop_assert!(parent.end_ns() >= r.end_ns(), "parent ends last");
            prop_assert_eq!(parent.thread, r.thread, "links never cross threads");
        }
    }

    /// Histogram quantiles track a sorted-vector reference to within
    /// one bucket (the histogram's intrinsic resolution).
    #[test]
    fn histogram_quantiles_track_sorted_reference(
        samples in proptest::collection::vec(0u64..200_000, 1..400),
    ) {
        let h = Histogram::new(LATENCY_US_BUCKETS);
        for &s in &samples {
            h.observe(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let reference = sorted[rank - 1];
            // The enclosing bucket of the reference value, widened by
            // one bucket either side (rank rounding can shift the
            // crossing bucket by one sample).
            let idx = LATENCY_US_BUCKETS.partition_point(|&b| b < reference);
            let lo = if idx >= 2 { LATENCY_US_BUCKETS[idx - 2] } else { 0 };
            let hi = LATENCY_US_BUCKETS
                .get(idx + 1)
                .copied()
                .unwrap_or(u64::MAX);
            let got = h.quantile(q);
            prop_assert!(
                got >= lo as f64 && got <= hi as f64,
                "q={q}: got {got}, reference {reference} (bucket window [{lo}, {hi}])"
            );
        }
    }
}

/// Bucket boundaries are `le` (inclusive): a value equal to a bound
/// lands in that bound's bucket, one more spills into the next.
#[test]
fn histogram_bucket_boundaries_are_le_inclusive() {
    let h = Histogram::new(&[10, 100]);
    h.observe(10);
    h.observe(11);
    h.observe(100);
    h.observe(101); // overflow bucket
    let (rows, total) = h.cumulative();
    assert_eq!(rows, vec![(1, 10), (3, 100)]);
    assert_eq!(total, 4, "the 101 observation lands in the overflow bucket");
    assert_eq!(h.count(), 4);
    assert_eq!(h.sum(), 222);
}

/// A Chrome trace exported from a real end-to-end run (the e1 toolflow
/// experiment with the global tracer enabled) is valid JSON whose
/// events are all complete `X` (or metadata `M`) events — balanced by
/// construction — and whose names cover the pipeline stages.
#[test]
fn chrome_export_of_e1_run_is_valid_and_complete() {
    argo_trace::enable_spans();
    let csv = argo_bench::e1_toolflow();
    assert!(csv.contains('\n'), "e1 produced a report");

    let records = argo_trace::global().snapshot();
    assert!(!records.is_empty(), "the run recorded spans");
    let json = chrome_trace(&records);
    let doc = argo_serve::Value::parse(&json).expect("trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .expect("top-level traceEvents key")
        .as_arr()
        .expect("traceEvents is an array");
    assert!(!events.is_empty());

    let mut names = Vec::new();
    for ev in events {
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        match ph {
            "M" => assert_eq!(ev.get("name").unwrap().as_str(), Some("thread_name")),
            "X" => {
                assert!(ev.get("ts").is_some() && ev.get("dur").is_some());
                names.push(ev.get("name").unwrap().as_str().unwrap().to_string());
            }
            other => panic!("unexpected event phase {other:?} (only M/X are emitted)"),
        }
    }
    // e1's configuration runs frontend and backend on every point
    // (seed-costs only runs for granularity sweeps that need it).
    for stage in ["stage.frontend", "stage.backend"] {
        assert!(
            names.iter().any(|n| n == stage),
            "missing {stage} span in {names:?}"
        );
    }
}
