//! Property-based tests over randomly generated mini-C programs and task
//! graphs (proptest).
//!
//! The generators produce *valid* structured programs (declared-before-use,
//! literal loop bounds, in-bounds constant subscript offsets), so every
//! property exercises the real pipeline rather than error paths:
//!
//! * parser/printer round-trip;
//! * timing-schema ≡ IPET cross-validation on arbitrary programs;
//! * interpreter values stay within the interval analysis' loop bounds;
//! * DOALL chunking preserves semantics on arbitrary map loops;
//! * schedulers produce valid schedules with makespan between the
//!   critical-path lower bound and the sequential upper bound.

use argo_adl::{CoreId, MemoryMap, Platform};
use argo_ir::ast::{BinOp, Expr};
use argo_ir::interp::{ArgVal, ArrayData, Interp, NullHook};
use argo_ir::parse::parse_program;
use argo_sched::anneal::SimulatedAnnealing;
use argo_sched::bnb::BranchAndBound;
use argo_sched::list::ListScheduler;
use argo_sched::random::{random_task_graph, RandomGraphParams};
use argo_sched::{sequential_schedule, SchedCtx, Scheduler};
use argo_wcet::cost::CostCtx;
use argo_wcet::ipet::function_wcet_ipet;
use argo_wcet::schema::function_wcets;
use argo_wcet::value::{loop_bounds, ValueCtx};
use proptest::prelude::*;

const ARRAY: usize = 24;

/// A generated arithmetic expression over `x` (real scalar), `i` (int
/// loop var) and `a[...]` (real array reads with safe offsets).
fn arb_real_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0u32..5).prop_map(|v| format!("{v}.5")),
        Just("x".to_string()),
        (0usize..4).prop_map(|o| format!("a[imin(i + {o}, {})]", ARRAY - 1)),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} + {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} * {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} - {r})")),
            inner.clone().prop_map(|e| format!("sqrt(fabs({e}))")),
            inner.prop_map(|e| format!("fmin({e}, 100.0)")),
        ]
    })
    .boxed()
}

/// A generated single-function program with loops, branches and array
/// traffic — always valid and always terminating.
fn arb_program() -> BoxedStrategy<String> {
    (
        arb_real_expr(2),
        arb_real_expr(2),
        1usize..=ARRAY,
        1usize..=8,
        any::<bool>(),
    )
        .prop_map(|(e1, e2, trip, inner_trip, with_branch)| {
            let body = if with_branch {
                format!("if (x > 2.0) {{ b[i] = {e1}; }} else {{ b[i] = {e2}; }}")
            } else {
                format!("b[i] = {e1};")
            };
            format!(
                "void main(real a[{ARRAY}], real b[{ARRAY}]) {{\n\
                   real x; int i; int j;\n\
                   x = 1.0;\n\
                   for (i = 0; i < {trip}; i = i + 1) {{\n\
                     for (j = 0; j < {inner_trip}; j = j + 1) {{ x = x + a[j] * 0.125; }}\n\
                     {body}\n\
                   }}\n\
                 }}"
            )
        })
        .boxed()
}

fn input_args(seed: u64) -> Vec<ArgVal> {
    let vals: Vec<f64> = (0..ARRAY)
        .map(|k| ((k as u64 * 7 + seed) % 13) as f64 * 0.5)
        .collect();
    vec![
        ArgVal::Array(ArrayData::from_reals(&vals)),
        ArgVal::Array(ArrayData::from_reals(&[0.0; ARRAY])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Printing a parsed program and re-parsing yields the same AST
    /// (modulo statement ids, which the printer does not emit).
    #[test]
    fn print_parse_round_trip(src in arb_program()) {
        let p1 = parse_program(&src).expect("generated program parses");
        argo_ir::validate::validate(&p1).expect("generated program validates");
        let printed = argo_ir::printer::print_program(&p1);
        let p2 = parse_program(&printed).expect("printed program re-parses");
        // Compare via a second print (ids differ, text must agree).
        prop_assert_eq!(printed.clone(), argo_ir::printer::print_program(&p2));
    }

    /// The two independent code-level WCET engines agree exactly.
    #[test]
    fn schema_equals_ipet(src in arb_program()) {
        let p = parse_program(&src).expect("parses");
        let platform = Platform::xentium_manycore(1);
        let mem = MemoryMap::new();
        let ctx = CostCtx::new(&p, &platform, CoreId(0), 1, &mem);
        let bounds = loop_bounds(&p, "main", &ValueCtx::default()).expect("bounded");
        let fw = function_wcets(&ctx, &bounds).expect("schema");
        let ipet = function_wcet_ipet(&ctx, &bounds, &fw, "main").expect("ipet");
        prop_assert_eq!(fw["main"], ipet);
    }

    /// The code-level WCET bound dominates the simulator-style worst-case
    /// charge of an actual sequential run (same cost tables).
    #[test]
    fn schema_bounds_interpreter_charge(src in arb_program(), seed in 0u64..32) {
        let p = parse_program(&src).expect("parses");
        let platform = Platform::xentium_manycore(1);
        let mem = MemoryMap::new();
        let ctx = CostCtx::new(&p, &platform, CoreId(0), 1, &mem);
        let bounds = loop_bounds(&p, "main", &ValueCtx::default()).expect("bounded");
        let fw = function_wcets(&ctx, &bounds).expect("schema");

        // Charge the sequential run with the same worst-case tables.
        struct ChargeHook<'a> {
            ctx: &'a CostCtx<'a>,
            total: u64,
        }
        impl argo_ir::interp::ExecHook for ChargeHook<'_> {
            fn on_op(&mut self, op: argo_ir::interp::OpClass) {
                self.total += self.ctx.op_cost(op);
            }
            fn on_intrinsic(&mut self, name: &str) {
                self.total += self.ctx.intrinsic_cost(name);
            }
            fn on_access(&mut self, base: &str, _k: argo_ir::interp::AccessKind) {
                self.total += self.ctx.access_cost(base);
            }
        }
        let mut hook = ChargeHook { ctx: &ctx, total: 0 };
        let mut interp = Interp::new(&p);
        interp.call_full("main", input_args(seed), &mut hook).expect("runs");
        prop_assert!(
            hook.total <= fw["main"],
            "observed charge {} exceeds WCET {}",
            hook.total,
            fw["main"]
        );
    }

    /// Chunking a generated DOALL map loop preserves the program outputs
    /// exactly, for every chunk count.
    #[test]
    fn chunking_preserves_semantics(
        e in arb_real_expr(2),
        trip in 2usize..=ARRAY,
        k in 2usize..=5,
        seed in 0u64..16,
    ) {
        let src = format!(
            "void main(real a[{ARRAY}], real b[{ARRAY}]) {{\n\
               real x; int i;\n\
               x = 2.0;\n\
               for (i = 0; i < {trip}; i = i + 1) {{ b[i] = {e}; }}\n\
             }}"
        );
        let original = parse_program(&src).expect("parses");
        let loop_id = original
            .function("main").unwrap().body.stmts.iter()
            .find(|s| matches!(s.kind, argo_ir::StmtKind::For { .. }))
            .unwrap().id;
        let mut chunked = original.clone();
        match argo_transform::chunk::chunk_loop(&mut chunked, "main", loop_id, k) {
            Ok(_) => {
                argo_ir::validate::validate(&chunked).expect("chunked validates");
                let o1 = Interp::new(&original)
                    .call_full("main", input_args(seed), &mut NullHook).expect("orig runs");
                let o2 = Interp::new(&chunked)
                    .call_full("main", input_args(seed), &mut NullHook).expect("chunked runs");
                prop_assert_eq!(o1.arrays, o2.arrays);
            }
            // Some generated loops are legitimately sequential (e.g. the
            // expression reads `x` which the classifier treats as shared).
            Err(err) => prop_assert!(err.msg.contains("sequential"), "{}", err.msg),
        }
    }

    /// Every scheduler yields a valid schedule with makespan in
    /// [critical path, sequential total].
    #[test]
    fn schedulers_are_valid_and_bounded(seed in 0u64..64, n in 4usize..14, cores in 1usize..5) {
        let g = random_task_graph(seed, &RandomGraphParams { tasks: n, ..Default::default() });
        let platform = Platform::xentium_manycore(cores);
        let ctx = SchedCtx::new(&platform);
        let seq = sequential_schedule(&g, &ctx).makespan();
        prop_assert!(seq >= g.total_work());
        let list = ListScheduler::new().schedule(&g, &ctx);
        let bnb = BranchAndBound { node_budget: 50_000 }.schedule(&g, &ctx);
        let sa = SimulatedAnnealing { iterations: 300, ..SimulatedAnnealing::with_seed(seed) }
            .schedule(&g, &ctx);
        for s in [&list, &bnb, &sa] {
            prop_assert!(s.validate(&g, &ctx).is_ok());
            prop_assert!(s.makespan() >= g.critical_path());
        }
        // BnB and SA are seeded by the list schedule and keep the best
        // incumbent, so they can never be worse. (No upper bound vs the
        // sequential schedule exists for greedy EFT under worst-case
        // communication — the E4 finding.)
        prop_assert!(bnb.makespan() <= list.makespan());
        prop_assert!(sa.makespan() <= list.makespan());
    }

    /// Constant folding never changes program results.
    #[test]
    fn folding_preserves_semantics(src in arb_program(), seed in 0u64..16) {
        use argo_transform::Pass;
        let original = parse_program(&src).expect("parses");
        let mut folded = original.clone();
        argo_transform::fold::ConstantFold.run(&mut folded).expect("folds");
        folded.renumber();
        let o1 = Interp::new(&original)
            .call_full("main", input_args(seed), &mut NullHook).expect("runs");
        let o2 = Interp::new(&folded)
            .call_full("main", input_args(seed), &mut NullHook).expect("runs");
        prop_assert_eq!(o1.arrays, o2.arrays);
    }

    /// HTG extraction yields acyclic sibling edges at every granularity,
    /// and the scheduling view round-trips through a valid topo order.
    #[test]
    fn extraction_is_acyclic(src in arb_program(), g in 0usize..3) {
        let p = parse_program(&src).expect("parses");
        let gran = [
            argo_htg::Granularity::Stmt,
            argo_htg::Granularity::Block,
            argo_htg::Granularity::Loop,
        ][g];
        let htg = argo_htg::extract::extract(&p, "main", gran).expect("extracts");
        prop_assert!(htg.edges_are_acyclic());
        let costs: std::collections::BTreeMap<_, _> =
            htg.top_level.iter().map(|&t| (t, 10u64)).collect();
        let graph = argo_sched::TaskGraph::from_htg(&htg, &costs);
        prop_assert_eq!(graph.topo_order().len(), graph.len());
    }

    /// The exact knapsack never saves fewer cycles than the greedy one,
    /// and both respect capacity.
    #[test]
    fn spm_exact_dominates_greedy(
        sizes in proptest::collection::vec((1u64..64, 1u64..1000), 1..10),
        cap_words in 1u64..64,
    ) {
        use argo_transform::spm::{allocate_exact, allocate_greedy, SpmCandidate};
        let cands: Vec<SpmCandidate> = sizes
            .iter()
            .enumerate()
            .map(|(i, &(words, gain))| SpmCandidate {
                name: format!("v{i}"),
                size_bytes: words * 8,
                gain_cycles: gain,
            })
            .collect();
        let cap = cap_words * 8;
        let e = allocate_exact(&cands, cap);
        let g = allocate_greedy(&cands, cap);
        prop_assert!(e.used_bytes <= cap);
        prop_assert!(g.used_bytes <= cap);
        prop_assert!(e.saved_cycles >= g.saved_cycles);
    }

    /// Interval arithmetic of the value analysis is sound for addition
    /// and multiplication over sampled points.
    #[test]
    fn interval_arithmetic_is_sound(
        a in -50i64..50, b in -50i64..50,
        c in -50i64..50, d in -50i64..50,
        x in 0i64..100, y in 0i64..100,
    ) {
        use argo_wcet::value::Interval;
        let (alo, ahi) = (a.min(b), a.max(b));
        let (clo, chi) = (c.min(d), c.max(d));
        let iv1 = Interval::range(alo, ahi);
        let iv2 = Interval::range(clo, chi);
        // Sample points inside each interval.
        let p1 = alo + x % (ahi - alo + 1);
        let p2 = clo + y % (chi - clo + 1);
        let sum = iv1.add(iv2);
        prop_assert!(sum.lo.unwrap() <= p1 + p2 && p1 + p2 <= sum.hi.unwrap());
        let prod = iv1.mul(iv2);
        prop_assert!(prod.lo.unwrap() <= p1 * p2 && p1 * p2 <= prod.hi.unwrap());
        let diff = iv1.sub(iv2);
        prop_assert!(diff.lo.unwrap() <= p1 - p2 && p1 - p2 <= diff.hi.unwrap());
    }
}

/// Deterministic sanity check that the generators themselves are healthy
/// (kept outside proptest so a generator regression fails loudly).
#[test]
fn generated_programs_have_expected_shape() {
    let src = "void main(real a[24], real b[24]) {\n\
               real x; int i; int j;\n\
               x = 1.0;\n\
               for (i = 0; i < 8; i = i + 1) {\n\
                 for (j = 0; j < 3; j = j + 1) { x = x + a[j] * 0.125; }\n\
                 b[i] = (x + a[imin(i + 1, 23)]);\n\
               }\n\
             }";
    let p = parse_program(src).unwrap();
    argo_ir::validate::validate(&p).unwrap();
    let htg = argo_htg::extract::extract(&p, "main", argo_htg::Granularity::Loop).unwrap();
    assert!(!htg.is_empty());
    let _ = (Expr::int(1), BinOp::Add); // exercise re-exports used above
}
