//! Integration tests for `argo-search` steering `argo-dse`:
//! Pareto-front algebra (permutation invariance, idempotence), seeded
//! determinism and thread-count invariance for every strategy, budget
//! and stall enforcement, and the acceptance regression — on a
//! 512-point lattice over a bench use case, every strategy evaluates at
//! most 25% of the points while recovering at least 90% of the
//! exhaustive Pareto front.

use argo_core::SchedulerKind;
use argo_dse::pareto::{dominates, pareto_front};
use argo_dse::{DesignSpace, Explorer, PlatformKind};
use argo_htg::Granularity;
use argo_ir::parse::parse_program;
use argo_search::{all_strategies, Budget};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The front is a property of the *set*: permuting the input only
    /// permutes the reported indices, never the selected vectors.
    #[test]
    fn pareto_front_is_invariant_under_permutation(
        objs in proptest::collection::vec((1u64..9, 1u64..500, 0u64..5), 1..40),
        shuffle_seed in any::<u64>(),
    ) {
        let objs: Vec<[u64; 3]> =
            objs.into_iter().map(|(c, w, s)| [c, w, s * 4096]).collect();

        // Deterministic Fisher–Yates driven by the generated seed.
        let mut perm: Vec<usize> = (0..objs.len()).collect();
        let mut state = shuffle_seed | 1;
        for i in (1..perm.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = ((state >> 33) as usize) % (i + 1);
            perm.swap(i, j);
        }
        let shuffled: Vec<[u64; 3]> = perm.iter().map(|&i| objs[i]).collect();

        let front_vectors = |objs: &[[u64; 3]]| -> Vec<[u64; 3]> {
            let mut v: Vec<[u64; 3]> =
                pareto_front(objs).into_iter().map(|i| objs[i]).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        prop_assert_eq!(front_vectors(&objs), front_vectors(&shuffled));
    }

    /// Extracting the front of a front is the identity: every member of
    /// a front is non-dominated within it.
    #[test]
    fn pareto_front_is_idempotent(
        objs in proptest::collection::vec((1u64..9, 1u64..500, 0u64..5), 1..40),
    ) {
        let objs: Vec<[u64; 3]> =
            objs.into_iter().map(|(c, w, s)| [c, w, s * 4096]).collect();
        let front: Vec<[u64; 3]> =
            pareto_front(&objs).into_iter().map(|i| objs[i]).collect();
        let again = pareto_front(&front);
        prop_assert_eq!(again, (0..front.len()).collect::<Vec<_>>());
        // And its members are mutually non-dominating.
        for a in &front {
            for b in &front {
                prop_assert!(!dominates(a, b) || !dominates(b, a));
            }
        }
    }
}

const TINY: &str = r#"
    real main(real a[64], real b[64]) {
        real s; int i;
        s = 0.0;
        for (i = 0; i < 64; i = i + 1) {
            b[i] = sqrt(a[i]) * 2.0 + sin(a[i]);
        }
        for (i = 0; i < 64; i = i + 1) { s = s + b[i]; }
        return s;
    }
"#;

fn tiny_explorer(threads: usize) -> Explorer {
    let mut ex = Explorer::with_threads(threads);
    ex.register_program("tiny", parse_program(TINY).unwrap(), "main");
    ex
}

/// A 48-point space over the registered tiny program (fast to evaluate).
fn tiny_space(seed: u64) -> DesignSpace {
    DesignSpace::new()
        .app("tiny")
        .platforms(vec![PlatformKind::Bus, PlatformKind::Noc])
        .cores(vec![1, 2, 4])
        .schedulers(vec![SchedulerKind::List, SchedulerKind::Anneal])
        .chunking(vec![true, false])
        .spm_capacities(vec![None, Some(4096)])
        .seed(seed)
}

/// Every strategy is deterministic for a fixed seed: two fresh
/// explorers produce byte-identical searched reports, and a different
/// seed explores a different point set.
#[test]
fn searches_are_seed_deterministic() {
    for strategy in all_strategies() {
        let run = |seed: u64| {
            tiny_explorer(4)
                .search(
                    &tiny_space(seed),
                    strategy.as_ref(),
                    Budget::evaluations(12),
                )
                .to_csv()
        };
        assert_eq!(run(7), run(7), "{} must be deterministic", strategy.name());
        assert_ne!(
            run(7),
            run(8),
            "{} must actually use its seed",
            strategy.name()
        );
    }
}

/// Thread count is invisible in searched reports: the strategy sees the
/// same evaluation results in the same order however the engine fans
/// each batch out.
#[test]
fn searches_are_thread_count_invariant() {
    for strategy in all_strategies() {
        let csv: Vec<String> = [1, 3, 8]
            .iter()
            .map(|&t| {
                tiny_explorer(t)
                    .search(&tiny_space(42), strategy.as_ref(), Budget::evaluations(16))
                    .to_csv()
            })
            .collect();
        assert_eq!(csv[0], csv[1], "{}", strategy.name());
        assert_eq!(csv[1], csv[2], "{}", strategy.name());
    }
}

/// The evaluation budget is a hard cap, and the report's rows are
/// exactly the evaluated subset.
#[test]
fn budgets_are_hard_caps() {
    for strategy in all_strategies() {
        for budget in [1usize, 5, 12] {
            let report = tiny_explorer(4).search(
                &tiny_space(42),
                strategy.as_ref(),
                Budget::evaluations(budget),
            );
            let info = report.search.as_ref().expect("search metadata");
            assert!(
                info.evaluated <= budget,
                "{} spent {} of {budget}",
                strategy.name(),
                info.evaluated
            );
            assert_eq!(report.rows.len(), info.evaluated);
        }
    }
}

/// A stall budget stops a sweep that no longer improves the front
/// (ROADMAP item (d)) well before the lattice is exhausted.
#[test]
fn stall_budget_stops_unimproving_searches() {
    for strategy in all_strategies() {
        let space = tiny_space(42);
        let report =
            tiny_explorer(4).search(&space, strategy.as_ref(), Budget::unlimited().with_stall(6));
        let info = report.search.as_ref().expect("search metadata");
        assert!(
            info.evaluated < space.len(),
            "{} evaluated the whole lattice despite the stall budget",
            strategy.name()
        );
        assert!(!report.pareto.is_empty());
    }
}

/// Distinct objective vectors on a report's Pareto front.
fn front_vectors(report: &argo_dse::ExplorationReport) -> BTreeSet<[u64; 3]> {
    report
        .pareto
        .iter()
        .filter_map(|&i| report.rows[i].objectives())
        .collect()
}

/// The acceptance regression (deterministic across runs and thread
/// counts): on a 512-point lattice over the EGPWS bench use case, each
/// seeded strategy evaluates at most 25% of the points while recovering
/// at least 90% of the exhaustive Pareto front's distinct objective
/// vectors.
#[test]
fn strategies_recover_the_front_of_a_512_point_lattice_within_a_quarter_budget() {
    let space = DesignSpace::new()
        .app("egpws")
        .platforms(vec![PlatformKind::Bus, PlatformKind::Noc])
        .cores(vec![1, 2, 4, 6])
        .schedulers(vec![SchedulerKind::List, SchedulerKind::BranchAndBound])
        .granularities(vec![Granularity::Loop, Granularity::Block])
        .chunking(vec![true, false])
        .spm_capacities(vec![
            None,
            Some(512),
            Some(1024),
            Some(2048),
            Some(4096),
            Some(8192),
            Some(12288),
            Some(16384),
        ])
        .seed(7);
    assert_eq!(space.len(), 512);
    let budget = space.len() / 4; // 128 = 25%

    let explorer = Explorer::new();
    let exhaustive = explorer.explore(&space);
    assert_eq!(exhaustive.failures(), 0);
    let reference = front_vectors(&exhaustive);
    assert!(
        reference.len() >= 8,
        "front must be non-trivial: {reference:?}"
    );

    for strategy in all_strategies() {
        // Two runs with different worker counts: byte-identical reports
        // (determinism across thread counts *and* across runs), then
        // the quality bar on the front.
        let run = |threads: usize| {
            let ex = Explorer::with_threads(threads);
            ex.search(&space, strategy.as_ref(), Budget::evaluations(budget))
        };
        let a = run(2);
        let b = run(5);
        assert_eq!(a.to_csv(), b.to_csv(), "{}", strategy.name());

        let info = a.search.as_ref().expect("search metadata");
        assert!(
            info.evaluated <= budget,
            "{} evaluated {} > 25% of the lattice",
            strategy.name(),
            info.evaluated
        );
        let found = front_vectors(&a);
        let recovered = reference.iter().filter(|v| found.contains(*v)).count();
        let recovery = recovered as f64 / reference.len() as f64;
        assert!(
            recovery >= 0.9,
            "{} recovered only {recovered}/{} front vectors ({recovery:.2})",
            strategy.name(),
            reference.len()
        );
    }
}
