//! Integration tests for the `argo-serve` daemon: wire-protocol
//! roundtrips, single-flight dedupe of concurrent identical requests,
//! hot replay through a shared persistent store, admission control,
//! and the hardening paths — panic isolation, deadlines, graceful
//! drain, and retry across a daemon restart.

use argo_dse::Explorer;
use argo_ir::parse::parse_program;
use argo_serve::{
    Client, Listener, RetryClient, RetryPolicy, ServeConfig, Server, ServerHandle, Value,
};
use argo_store::Store;
use std::sync::Arc;

/// Small but non-trivial: two parallelizable loops over 64 elements.
const TINY: &str = r#"
    real main(real a[64], real b[64]) {
        real s; int i;
        s = 0.0;
        for (i = 0; i < 64; i = i + 1) {
            b[i] = sqrt(a[i]) * 2.0 + sin(a[i]);
        }
        for (i = 0; i < 64; i = i + 1) { s = s + b[i]; }
        return s;
    }
"#;

fn tiny_explorer(store_dir: Option<&std::path::Path>) -> Explorer {
    let mut ex = Explorer::with_threads(2);
    ex.register_program("tiny", parse_program(TINY).unwrap(), "main");
    match store_dir {
        Some(dir) => ex.with_store(Arc::new(Store::open(dir).unwrap())),
        None => ex,
    }
}

fn boot(store_dir: Option<&std::path::Path>, cfg: ServeConfig) -> ServerHandle {
    Server::start(
        Listener::tcp("127.0.0.1:0").unwrap(),
        tiny_explorer(store_dir),
        cfg,
    )
    .unwrap()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("argo-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const COMPILE: &str =
    r#"{"id": 7, "kind": "compile", "app": "tiny", "cores": 2, "progress": true}"#;

#[test]
fn compile_roundtrip_streams_seq_stamped_progress() {
    let server = boot(None, ServeConfig::default());
    let mut client = Client::connect_tcp(server.addr()).unwrap();

    let reply = client.request(COMPILE).unwrap();
    assert!(reply.is_ok(), "compile failed: {}", reply.terminal);
    let frame = reply.frame().unwrap();
    assert_eq!(frame.get("id").unwrap().as_u64(), Some(7));
    assert_eq!(frame.get("kind").unwrap().as_str(), Some("compile"));
    let result = frame.get("result").unwrap();
    assert_eq!(
        result.get("label").unwrap().as_str(),
        Some("tiny/bus/2c/list/loop/chunk/spm=default")
    );
    let metrics = result.get("body").unwrap();
    assert!(metrics.get("par_bound").unwrap().as_u64().unwrap() > 0);

    // A cold compile runs all four stages; their progress frames carry
    // the per-session seq, strictly increasing in emission order.
    assert!(
        reply.progress.len() >= 8,
        "expected start+finish frames for four stages, got {:?}",
        reply.progress
    );
    let seqs: Vec<u64> = reply
        .progress
        .iter()
        .map(|f| {
            let v = Value::parse(f).unwrap();
            assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
            v.get("seq").unwrap().as_u64().unwrap()
        })
        .collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "seqs not strictly increasing: {seqs:?}"
    );
    assert_eq!(seqs[0], 0, "a fresh session starts its counter at 0");

    // The stats control request reflects the served work.
    let stats = client.request(r#"{"id": 8, "kind": "stats"}"#).unwrap();
    let frame = stats.frame().unwrap();
    let result = frame.get("result").unwrap();
    let requests = result.get("requests").unwrap();
    assert_eq!(requests.get("compile").unwrap().as_u64(), Some(1));
    let stages = result.get("stages").unwrap();
    assert_eq!(stages.get("backend_runs").unwrap().as_u64(), Some(1));
    assert_eq!(
        result.get("store").unwrap(),
        &Value::Null,
        "no store attached in this test"
    );

    client.request(r#"{"id": 9, "kind": "shutdown"}"#).unwrap();
    server.join();
}

/// Satellite: M concurrent identical requests → exactly one pipeline
/// execution, M byte-identical responses. The assertion is
/// deterministic regardless of arrival timing: overlapping requests
/// coalesce on the in-flight leader, and any straggler that misses the
/// flight window is answered by the store's point archive — either
/// way the pipeline (backend stage) runs once.
#[test]
fn concurrent_identical_requests_run_the_pipeline_once() {
    const M: usize = 6;
    let dir = temp_dir("dedupe");
    let server = boot(Some(&dir), ServeConfig::default());

    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..M)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::connect_tcp(server.addr()).unwrap();
                    let request = r#"{"id": 3, "kind": "compile", "app": "tiny", "cores": 4}"#;
                    client.request(request).unwrap().terminal
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for response in &responses[1..] {
        assert_eq!(
            response, &responses[0],
            "coalesced responses must be byte-identical"
        );
    }
    assert!(responses[0].contains("\"ok\":true"), "{}", responses[0]);

    let timing = server.stage_timings();
    assert_eq!(timing.backend.runs, 1, "exactly one pipeline execution");
    assert_eq!(timing.verify.runs, 1);
    let cache = server.cache_stats();
    assert_eq!(
        cache.point_store_misses, 1,
        "only the one executing request consulted the archive cold"
    );
    let (executed, coalesced) = server.singleflight_counts();
    assert_eq!(
        executed + coalesced,
        M as u64,
        "every request is a single-flight leader or follower"
    );
    assert_eq!(
        executed,
        1 + cache.point_store_hits,
        "each non-coalesced straggler was answered by the archive"
    );

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shared store makes repeats free across daemon restarts: a new
/// server over the populated directory answers the same request with
/// zero pipeline stages, no progress frames, and identical bytes.
#[test]
fn warm_store_replays_with_zero_stage_runs() {
    let dir = temp_dir("warm");

    let cold = {
        let server = boot(Some(&dir), ServeConfig::default());
        let mut client = Client::connect_tcp(server.addr()).unwrap();
        let reply = client.request(COMPILE).unwrap();
        assert!(reply.is_ok(), "{}", reply.terminal);
        assert!(!reply.progress.is_empty(), "cold run streams stages");
        server.shutdown();
        server.join();
        reply.terminal
    };

    let server = boot(Some(&dir), ServeConfig::default());
    let mut client = Client::connect_tcp(server.addr()).unwrap();
    let reply = client.request(COMPILE).unwrap();
    assert_eq!(reply.terminal, cold, "hot replay is byte-identical");
    assert!(
        reply.progress.is_empty(),
        "an archive hit runs no stages, so no frames stream: {:?}",
        reply.progress
    );
    let timing = server.stage_timings();
    assert_eq!(
        timing.frontend.runs + timing.backend.runs + timing.verify.runs,
        0,
        "a warm store answers without the pipeline"
    );
    assert_eq!(server.cache_stats().point_store_hits, 1);

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: a `RetryClient` request that spans a daemon restart — the
/// old daemon is fully gone before the new one boots — recovers through
/// its transport retries and gets a reply byte-identical to the cold
/// one, served without a single pipeline stage (warm store).
#[cfg(unix)]
#[test]
fn retry_spanning_daemon_restart_is_byte_identical() {
    use std::time::Duration;

    let dir = temp_dir("retry-restart");
    let sock = std::env::temp_dir().join(format!("argo-retry-{}.sock", std::process::id()));
    let sock_str = sock.to_str().unwrap().to_string();
    let boot_unix = |dir: &std::path::Path| {
        Server::start(
            Listener::unix(&sock_str).unwrap(),
            tiny_explorer(Some(dir)),
            ServeConfig::default(),
        )
        .unwrap()
    };

    // Cold pass on daemon A, then take A down completely.
    let server = boot_unix(&dir);
    let mut client = Client::connect_unix(&sock_str).unwrap();
    let request = r#"{"id": 7, "kind": "compile", "app": "tiny", "cores": 2}"#;
    let cold = client.request(request).unwrap();
    assert!(cold.is_ok(), "{}", cold.terminal);
    drop(client);
    server.shutdown();
    server.join();

    // The retrying client dials a dead socket; daemon B boots over the
    // same path and store a few backoffs later.
    let (reply, retries, server) = std::thread::scope(|scope| {
        let booter = scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(40));
            boot_unix(&dir)
        });
        let mut retry = RetryClient::unix(
            &sock_str,
            RetryPolicy {
                attempts: 50,
                base: Duration::from_millis(5),
                cap: Duration::from_millis(50),
                seed: 11,
            },
        );
        let reply = retry.request(request).unwrap();
        (reply, retry.retries(), booter.join().unwrap())
    });
    assert!(retries > 0, "the request must actually have been retried");
    assert_eq!(
        reply.terminal, cold.terminal,
        "the retried reply across the restart must be byte-identical"
    );
    assert_eq!(
        server.stage_timings().backend.runs,
        0,
        "daemon B answers the retried request from the warm store"
    );

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&sock);
}

/// Satellite: a request whose deadline elapsed before a worker picked
/// it up is answered with a structured `deadline-exceeded` error frame
/// — and a later request on the same connection still works once the
/// deadline pressure is off (nothing transient was memoized).
#[test]
fn expired_deadline_yields_a_structured_error_frame() {
    let server = boot(
        None,
        ServeConfig {
            // A zero deadline is already expired at admission.
            deadline_ms: Some(0),
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect_tcp(server.addr()).unwrap();
    let reply = client
        .request(r#"{"id": 4, "kind": "compile", "app": "tiny", "cores": 2}"#)
        .unwrap();
    assert!(
        reply.terminal.contains("\"frame\":\"error\"")
            && reply.terminal.contains("\"code\":\"deadline-exceeded\""),
        "{}",
        reply.terminal
    );
    // Control requests have no deadline.
    let stats = client.request(r#"{"id": 5, "kind": "stats"}"#).unwrap();
    assert!(stats.is_ok());
    let frame = stats.frame().unwrap();
    let faults = frame.get("result").unwrap().get("faults").unwrap();
    assert!(
        faults.get("deadline_exceeded").unwrap().as_u64().unwrap() >= 1,
        "the deadline shows up in the fault counters"
    );
    server.shutdown();
    server.join();
}

/// Satellite: a panic inside request execution (here injected via a
/// chaos store that panics on reads) is isolated to that request — the
/// client gets a structured `internal-error` (or `leader-failed`)
/// frame, and the daemon keeps serving.
#[test]
fn injected_panics_become_structured_errors_and_daemon_survives() {
    use argo_chaos::{ChaosIo, FaultPlan};

    let dir = temp_dir("panic-iso");
    let io = Arc::new(ChaosIo::new(FaultPlan {
        panic: 1000,
        ..FaultPlan::quiet(3)
    }));
    let store = Store::open_with_io(&dir, io as Arc<dyn argo_store::IoBackend>).unwrap();
    let mut explorer = Explorer::with_threads(2);
    explorer.register_program("tiny", parse_program(TINY).unwrap(), "main");
    let explorer = explorer.with_store(Arc::new(store));
    let server = Server::start(
        Listener::tcp("127.0.0.1:0").unwrap(),
        explorer,
        ServeConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect_tcp(server.addr()).unwrap();

    for id in 0..3 {
        let reply = client
            .request(&format!(
                "{{\"id\": {id}, \"kind\": \"compile\", \"app\": \"tiny\", \"cores\": 2}}"
            ))
            .unwrap();
        assert!(
            reply.terminal.contains("\"frame\":\"error\"")
                && (reply.terminal.contains("\"code\":\"internal-error\"")
                    || reply.terminal.contains("\"code\":\"leader-failed\"")),
            "expected a structured panic-isolation frame: {}",
            reply.terminal
        );
    }
    // Still alive, still answering.
    let stats = client.request(r#"{"id": 9, "kind": "stats"}"#).unwrap();
    assert!(stats.is_ok(), "{}", stats.terminal);

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: graceful drain. After shutdown begins, an already-open
/// connection gets `shutting-down` error frames for new work, while
/// control requests are still answered.
#[test]
fn drain_rejects_new_work_with_shutting_down() {
    let server = boot(None, ServeConfig::default());
    let mut client = Client::connect_tcp(server.addr()).unwrap();

    let reply = client
        .request(r#"{"id": 1, "kind": "compile", "app": "tiny", "cores": 2}"#)
        .unwrap();
    assert!(reply.is_ok(), "{}", reply.terminal);

    server.shutdown();
    let reply = client
        .request(r#"{"id": 2, "kind": "compile", "app": "tiny", "cores": 4}"#)
        .unwrap();
    assert!(
        reply.terminal.contains("\"frame\":\"error\"")
            && reply.terminal.contains("\"code\":\"shutting-down\""),
        "{}",
        reply.terminal
    );
    let stats = client.request(r#"{"id": 3, "kind": "stats"}"#).unwrap();
    assert!(
        stats.is_ok(),
        "control requests still answered during drain"
    );

    server.join();
}

#[test]
fn explore_sweeps_report_pareto_and_coarse_progress() {
    let server = boot(None, ServeConfig::default());
    let mut client = Client::connect_tcp(server.addr()).unwrap();

    let reply = client
        .request(
            r#"{"id": 5, "kind": "explore", "progress": true, "apps": ["tiny"], "cores": [1, 2], "schedulers": ["list", "anneal"]}"#,
        )
        .unwrap();
    assert!(reply.is_ok(), "{}", reply.terminal);
    let frame = reply.frame().unwrap();
    let result = frame.get("result").unwrap();
    assert_eq!(result.get("points").unwrap().as_u64(), Some(4));
    assert_eq!(result.get("failures").unwrap().as_u64(), Some(0));
    assert!(
        !result.get("pareto").unwrap().as_arr().unwrap().is_empty(),
        "a successful sweep has a non-empty front"
    );

    // Sweep progress is the done/total counter; the final frame must
    // report completion.
    let last = reply.progress.last().expect("at least one progress frame");
    let v = Value::parse(last).unwrap();
    assert_eq!(v.get("done").unwrap().as_u64(), Some(4));
    assert_eq!(v.get("total").unwrap().as_u64(), Some(4));

    server.shutdown();
    server.join();
}

#[test]
fn protocol_errors_are_structured() {
    let cfg = ServeConfig {
        max_points: 4,
        ..ServeConfig::default()
    };
    let server = boot(None, cfg);
    let mut client = Client::connect_tcp(server.addr()).unwrap();

    // Malformed JSON → bad-request.
    let reply = client.request("this is not json").unwrap();
    assert!(
        reply.terminal.contains("\"frame\":\"error\""),
        "{}",
        reply.terminal
    );
    assert!(
        reply.terminal.contains("\"code\":\"bad-request\""),
        "{}",
        reply.terminal
    );

    // Unknown enum label → bad-request, with the parse message.
    let reply = client
        .request(r#"{"id": 1, "kind": "compile", "scheduler": "magic"}"#)
        .unwrap();
    assert!(
        reply.terminal.contains("\"code\":\"bad-request\""),
        "{}",
        reply.terminal
    );

    // A space over the admission limit → space-too-large.
    let reply = client
        .request(r#"{"id": 2, "kind": "explore", "apps": ["tiny"], "cores": [1, 2, 3, 4, 6]}"#)
        .unwrap();
    assert!(
        reply.terminal.contains("\"code\":\"space-too-large\""),
        "{}",
        reply.terminal
    );

    // A zero-capacity queue rejects all work deterministically.
    let full = Server::start(
        Listener::tcp("127.0.0.1:0").unwrap(),
        tiny_explorer(None),
        ServeConfig {
            queue_limit: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client2 = Client::connect_tcp(full.addr()).unwrap();
    let reply = client2
        .request(r#"{"id": 3, "kind": "compile", "app": "tiny"}"#)
        .unwrap();
    assert!(
        reply.terminal.contains("\"code\":\"over-capacity\""),
        "{}",
        reply.terminal
    );
    full.shutdown();
    full.join();

    server.shutdown();
    server.join();
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_works() {
    let path = std::env::temp_dir().join(format!("argo-serve-sock-{}.sock", std::process::id()));
    let path_str = path.to_str().unwrap().to_string();
    let server = Server::start(
        Listener::unix(&path_str).unwrap(),
        tiny_explorer(None),
        ServeConfig::default(),
    )
    .unwrap();

    let mut client = Client::connect_unix(&path_str).unwrap();
    let reply = client
        .request(r#"{"id": 1, "kind": "compile", "app": "tiny", "cores": 2}"#)
        .unwrap();
    assert!(reply.is_ok(), "{}", reply.terminal);

    client.request(r#"{"id": 2, "kind": "shutdown"}"#).unwrap();
    server.join();
    let _ = std::fs::remove_file(&path);
}

/// Satellite: stage wall time is accumulated per session only; the
/// server-wide `stats` view is the sum of the per-session observers,
/// with no second (global) accumulation path to drift from.
#[test]
fn stats_stage_wall_equals_sum_of_per_session_spans() {
    let server = boot(None, ServeConfig::default());

    // Two sessions, distinct points (no coalescing, no cache hits).
    let mut a = Client::connect_tcp(server.addr()).unwrap();
    let mut b = Client::connect_tcp(server.addr()).unwrap();
    let ra = a
        .request(r#"{"id": 1, "kind": "compile", "app": "tiny", "cores": 2}"#)
        .unwrap();
    let rb = b
        .request(r#"{"id": 2, "kind": "compile", "app": "tiny", "cores": 4}"#)
        .unwrap();
    assert!(ra.is_ok() && rb.is_ok());

    let total = server.stage_timings();
    let sessions = server.session_stage_timings();
    let mut sum = argo_dse::StageTimings::default();
    for (_, t) in &sessions {
        sum.merge(t);
    }
    assert_eq!(sum, total, "stats stage-wall is exactly the session sum");
    assert_eq!(total.backend.runs, 2, "one pipeline run per session");
    let with_work = sessions.iter().filter(|(_, t)| t.backend.runs > 0).count();
    assert_eq!(
        with_work, 2,
        "each session's work lands on its own observer"
    );

    server.shutdown();
    server.join();
}

/// Satellite: the `metrics` control request answers with Prometheus
/// text exposition covering request-latency histograms and the backing
/// store's hit/miss counters.
#[test]
fn metrics_request_returns_prometheus_text() {
    let dir = temp_dir("metrics");
    let server = boot(Some(&dir), ServeConfig::default());
    let mut client = Client::connect_tcp(server.addr()).unwrap();

    let reply = client
        .request(r#"{"id": 1, "kind": "compile", "app": "tiny", "cores": 2}"#)
        .unwrap();
    assert!(reply.is_ok(), "{}", reply.terminal);

    let reply = client.request(r#"{"id": 2, "kind": "metrics"}"#).unwrap();
    let frame = reply.frame().unwrap();
    assert_eq!(frame.get("kind").unwrap().as_str(), Some("metrics"));
    let text = frame
        .get("result")
        .unwrap()
        .get("prometheus")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(!text.is_empty());
    assert!(text.contains("# TYPE"), "{text}");
    assert!(
        text.contains("argo_serve_request_latency_us_bucket{kind=\"compile\",le="),
        "per-kind latency histogram missing:\n{text}"
    );
    // The registry is process-global, so other in-process servers of
    // this test binary contribute too — assert presence, not an exact
    // count.
    assert!(
        text.contains("argo_serve_request_latency_us_count{kind=\"compile\"}"),
        "compile latency count missing:\n{text}"
    );
    assert!(text.contains("argo_store_hits_total"), "{text}");
    assert!(text.contains("argo_store_misses_total"), "{text}");
    assert!(
        text.contains("argo_store_put_latency_us_count"),
        "store put latency histogram missing:\n{text}"
    );

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
