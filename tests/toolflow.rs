//! Integration suite for the `Toolflow` session API:
//!
//! 1. **Equivalence** — the staged session run (`run_frontend` →
//!    `run_seed_costs` → `run_backend`) produces a byte-identical
//!    `report()` to the legacy one-call `compile()` for every bundled
//!    use case, across every MHP analysis mode.
//! 2. **Observer discipline** (property) — stage events are well-nested
//!    `(start, finish)` pairs for arbitrary configurations, with one
//!    feedback snapshot per backend round.
//! 3. **Fingerprint stability** — canonical platform/config
//!    fingerprints are pinned to fixed expected hashes, so any process,
//!    build or refactor that changes the encoding fails this regression
//!    (the contract persistent caches rely on).

use argo_adl::Platform;
use argo_core::{
    compile, Artifact, CollectingObserver, Fingerprintable, SchedulerKind, Stage, ToolchainConfig,
    Toolflow,
};
use argo_htg::Granularity;
use argo_wcet::system::MhpMode;
use proptest::prelude::*;

/// Staged session output is bit-identical to legacy `compile()` on all
/// three bundled apps (egpws, polka, weaa), for every MHP mode.
#[test]
fn staged_session_report_is_byte_identical_to_legacy_compile() {
    for uc in argo_apps::all_use_cases(42) {
        for mhp in [MhpMode::Naive, MhpMode::Static, MhpMode::Windows] {
            let platform = Platform::xentium_manycore(4);
            let cfg = ToolchainConfig {
                mhp,
                ..Default::default()
            };
            let legacy = compile(uc.program.clone(), uc.entry, &platform, &cfg)
                .unwrap_or_else(|e| panic!("{} ({mhp}): {e}", uc.name));
            let flow = Toolflow::new(uc.program.clone(), uc.entry)
                .platform(&platform)
                .config(cfg);
            let artifact = flow.run_frontend().unwrap();
            let costs = flow.run_seed_costs(&artifact).unwrap();
            let staged = flow.run_backend(artifact, Some(&costs)).unwrap();
            assert_eq!(
                legacy.report(),
                staged.report(),
                "{} ({mhp}): staged report differs from legacy compile",
                uc.name
            );
            assert_eq!(
                legacy.fingerprint(),
                staged.fingerprint(),
                "{} ({mhp}): result fingerprints differ",
                uc.name
            );
        }
    }
}

const TINY: &str = r#"
    real main(real a[32], real b[32]) {
        real s; int i;
        s = 0.0;
        for (i = 0; i < 32; i = i + 1) {
            b[i] = sqrt(a[i]) + a[i] * 2.0;
        }
        for (i = 0; i < 32; i = i + 1) { s = s + b[i]; }
        return s;
    }
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For arbitrary configurations, observer events are well-nested
    /// `(start, finish)` pairs per stage — one pair per stage run, with
    /// feedback snapshots only inside the backend.
    #[test]
    fn observer_events_are_well_nested_for_arbitrary_configs(
        cores in 1usize..5,
        sched in prop_oneof![
            Just(SchedulerKind::List),
            Just(SchedulerKind::BranchAndBound),
            Just(SchedulerKind::Anneal),
        ],
        gran in prop_oneof![
            Just(Granularity::Loop),
            Just(Granularity::Block),
            Just(Granularity::Stmt),
        ],
        chunk in any::<bool>(),
        rounds in 1u32..4,
        seeded in any::<bool>(),
    ) {
        let program = argo_ir::parse::parse_program(TINY).unwrap();
        let platform = Platform::xentium_manycore(cores);
        let cfg = ToolchainConfig {
            granularity: gran,
            chunk_loops: chunk,
            scheduler: sched,
            feedback_rounds: rounds,
            ..Default::default()
        };
        let obs = CollectingObserver::new();
        let flow = Toolflow::new(program, "main")
            .platform(&platform)
            .config(cfg)
            .observer(&obs);
        let artifact = flow.run_frontend().unwrap();
        let r = if seeded {
            let costs = flow.run_seed_costs(&artifact).unwrap();
            flow.run_backend(artifact, Some(&costs)).unwrap()
        } else {
            flow.run_backend(artifact, None).unwrap()
        };
        prop_assert!(obs.well_nested(), "events not well-nested: {:?}", obs.events());
        prop_assert_eq!(obs.finished_count(Stage::Frontend), 1);
        prop_assert_eq!(obs.finished_count(Stage::SeedCosts), usize::from(seeded));
        prop_assert_eq!(obs.finished_count(Stage::Backend), 1);
        prop_assert_eq!(obs.feedback_rounds().len() as u32, r.feedback_iterations);
    }
}

/// Canonical fingerprints are *pinned*: these constants were produced
/// by a separate process and must reproduce forever. A failure here
/// means the canonical encoding changed — which invalidates every
/// persisted cache key downstream, so it must be a deliberate,
/// versioned decision, never an accident.
#[test]
fn platform_and_config_fingerprints_are_stable_across_processes() {
    assert_eq!(
        Platform::xentium_manycore(4).fingerprint().to_hex(),
        "05a5b7431a94a350"
    );
    assert_eq!(
        Platform::kit_tile_noc(2, 2).fingerprint().to_hex(),
        "5e00179844742f32"
    );
    assert_eq!(
        ToolchainConfig::default().fingerprint().to_hex(),
        "b2b8817ad8ba11f6"
    );
}

/// The same inputs fingerprint identically through independently built
/// sessions (the in-process half of cross-process stability), and the
/// hex rendering round-trips the raw value.
#[test]
fn session_stage_fingerprints_reproduce() {
    let platform = Platform::xentium_manycore(4);
    let a = Toolflow::new(argo_ir::parse::parse_program(TINY).unwrap(), "main").platform(&platform);
    let b = Toolflow::new(argo_ir::parse::parse_program(TINY).unwrap(), "main").platform(&platform);
    let fa = a.frontend_fingerprint().unwrap();
    assert_eq!(fa, b.frontend_fingerprint().unwrap());
    assert_eq!(
        a.seed_cost_fingerprint().unwrap(),
        b.seed_cost_fingerprint().unwrap()
    );
    assert_eq!(fa.to_hex().len(), 16);
    assert_eq!(u64::from_str_radix(&fa.to_hex(), 16).unwrap(), fa.0);
}

/// Observer events carry a per-session sequence number: one shared
/// counter across all event kinds, strictly increasing in emission
/// order with no gaps — the contract `argo-serve` relies on to let
/// clients restore order over a reordering transport. Pinned here so a
/// refactor that forks the counter per event kind (or starts it
/// anywhere but 0) fails loudly.
#[test]
fn observer_seq_is_contiguous_across_all_event_kinds() {
    let platform = Platform::xentium_manycore(2);
    let obs = CollectingObserver::new();
    let flow = Toolflow::new(argo_ir::parse::parse_program(TINY).unwrap(), "main")
        .platform(&platform)
        .config(ToolchainConfig {
            feedback_rounds: 2,
            ..Default::default()
        })
        .observer(&obs);
    let artifact = flow.run_frontend().unwrap();
    let costs = flow.run_seed_costs(&artifact).unwrap();
    flow.run_backend(artifact, Some(&costs)).unwrap();

    let seqs = obs.seqs();
    let expected: Vec<u64> = (0..seqs.len() as u64).collect();
    assert_eq!(
        seqs, expected,
        "seq must be contiguous from 0 in arrival order (starts, finishes \
         and feedback rounds share one counter)"
    );
    // Three stages ran and two feedback rounds fired: 3×(start+finish)+2.
    assert_eq!(seqs.len(), 8);

    // A second session starts its own counter at 0.
    let obs2 = CollectingObserver::new();
    let flow2 = Toolflow::new(argo_ir::parse::parse_program(TINY).unwrap(), "main")
        .platform(&platform)
        .observer(&obs2);
    flow2.run_frontend().unwrap();
    assert_eq!(obs2.seqs(), vec![0, 1]);
}
