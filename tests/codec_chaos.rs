//! Adversarial robustness properties for the artifact codec (proptest).
//!
//! The persistent store treats any payload that fails [`Codec::decode`]
//! as a counted cache miss, so the decoder is the last line of defence
//! between corrupted bytes and the pipeline. These properties pin the
//! two guarantees that defence rests on:
//!
//! * **panic-freedom** — `from_bytes` on arbitrary byte mutations of a
//!   valid encoding (and on fully arbitrary byte soup) returns
//!   `Ok`/`Err`, never panics and never over-allocates;
//! * **no silently different artifact** — when a mutated payload *does*
//!   decode, the result is a self-consistent value: re-encoding it
//!   yields bytes that decode back to the same value, and for the
//!   injective structural encodings ([`Diagnostic`], [`Schedule`]) the
//!   re-encoding is bitwise identical to the mutated input, i.e. the
//!   decoder only ever accepts exact canonical encodings. (The
//!   [`CostTable`] map encoding normalises key order on decode, so it
//!   gets the fixpoint guarantee, not bitwise identity.)

use argo_adl::CoreId;
use argo_core::artifact::CostTable;
use argo_core::codec::Codec;
use argo_core::{Diagnostic, ErrorCode, Fingerprint, Stage};
use argo_htg::TaskId;
use argo_sched::Schedule;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::fmt::Debug;

// --- generators ---------------------------------------------------------

const STAGES: [Stage; 4] = [
    Stage::Frontend,
    Stage::SeedCosts,
    Stage::Backend,
    Stage::Verify,
];

const CODES: [ErrorCode; 22] = [
    ErrorCode::InvalidProgram,
    ErrorCode::UnknownProgram,
    ErrorCode::UnknownEntry,
    ErrorCode::MissingPlatform,
    ErrorCode::InvalidPlatform,
    ErrorCode::TransformFailed,
    ErrorCode::UnboundedLoop,
    ErrorCode::ExtractionFailed,
    ErrorCode::EmptyHtg,
    ErrorCode::CodeWcetFailed,
    ErrorCode::MemAssignFailed,
    ErrorCode::ParallelModelFailed,
    ErrorCode::DataRace,
    ErrorCode::UnsoundSchedule,
    ErrorCode::PlacementOverflow,
    ErrorCode::CommOrdering,
    ErrorCode::UninitRead,
    ErrorCode::DeadStore,
    ErrorCode::UnreachableStmt,
    ErrorCode::InternalError,
    ErrorCode::DeadlineExceeded,
    ErrorCode::LeaderFailed,
];

/// Arbitrary Unicode strings, including multibyte code points, so the
/// length-prefixed UTF-8 framing is exercised at every byte width.
fn arb_string() -> BoxedStrategy<String> {
    vec(any::<u32>(), 0..8)
        .prop_map(|cs| {
            cs.into_iter()
                .map(|c| char::from_u32(c % 0x0011_0000).unwrap_or('\u{fffd}'))
                .collect()
        })
        .boxed()
}

fn arb_diagnostic() -> BoxedStrategy<Diagnostic> {
    (
        (0usize..STAGES.len()).prop_map(|i| STAGES[i]),
        (0usize..CODES.len()).prop_map(|i| CODES[i]),
        (any::<bool>(), arb_string()).prop_map(|(some, s)| some.then_some(s)),
        arb_string(),
    )
        .prop_map(|(stage, code, entity, message)| Diagnostic {
            stage,
            code,
            entity,
            message,
        })
        .boxed()
}

/// Codec-arbitrary schedules: the three columns need not agree on
/// length or ordering for the encoding layer, so none is imposed.
fn arb_schedule() -> BoxedStrategy<Schedule> {
    (
        vec(any::<usize>().prop_map(CoreId), 0..6),
        vec(any::<u64>(), 0..6),
        vec(any::<u64>(), 0..6),
    )
        .prop_map(|(assignment, start, finish)| Schedule {
            assignment,
            start,
            finish,
        })
        .boxed()
}

fn arb_cost_table() -> BoxedStrategy<CostTable> {
    vec((any::<usize>(), any::<u64>()), 0..8)
        .prop_map(|pairs| {
            CostTable::from(
                pairs
                    .into_iter()
                    .map(|(t, c)| (TaskId(t), c))
                    .collect::<BTreeMap<_, _>>(),
            )
        })
        .boxed()
}

// --- byte mutations -----------------------------------------------------

/// One deterministic corruption of a byte buffer. Offsets and lengths
/// are raw draws reduced modulo the buffer length at application time,
/// so the same plan applies to encodings of any size.
#[derive(Debug, Clone)]
struct Mutation {
    kind: u8,
    offset: usize,
    mask: u8,
    extra: Vec<u8>,
}

impl Mutation {
    fn apply(&self, bytes: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        match self.kind % 4 {
            // Flip at least one bit of one byte.
            0 => {
                if !out.is_empty() {
                    let at = self.offset % out.len();
                    out[at] ^= self.mask | 1;
                }
            }
            // Truncate anywhere, including to empty.
            1 => out.truncate(self.offset % (out.len() + 1)),
            // Splice arbitrary bytes in at any position.
            2 => {
                let at = self.offset % (out.len() + 1);
                out.splice(at..at, self.extra.iter().copied());
            }
            // Overwrite a run starting anywhere.
            _ => {
                if !out.is_empty() {
                    let at = self.offset % out.len();
                    for (i, b) in self.extra.iter().enumerate() {
                        if at + i >= out.len() {
                            break;
                        }
                        out[at + i] = *b;
                    }
                }
            }
        }
        out
    }
}

fn arb_mutation() -> BoxedStrategy<Mutation> {
    (
        any::<u8>(),
        any::<usize>(),
        any::<u8>(),
        vec(any::<u8>(), 1..12),
    )
        .prop_map(|(kind, offset, mask, extra)| Mutation {
            kind,
            offset,
            mask,
            extra,
        })
        .boxed()
}

// --- the properties -----------------------------------------------------

/// The shared corruption property: the valid encoding round-trips, and
/// the mutated one either fails cleanly or decodes to a self-consistent
/// value. `canonical` additionally requires that a successful decode
/// implies the input bytes *were* the canonical encoding — true for the
/// injective structural codecs, waived for normalising ones (maps).
fn check_mutation<T>(value: &T, mutation: &Mutation, canonical: bool)
where
    T: Codec + PartialEq + Debug,
{
    let bytes = value.to_bytes();
    let back = T::from_bytes(&bytes).expect("valid encoding must decode");
    assert_eq!(&back, value, "clean round-trip changed the value");

    let mutated = mutation.apply(&bytes);
    // Must not panic, whatever the bytes now say.
    if let Ok(decoded) = T::from_bytes(&mutated) {
        let reencoded = decoded.to_bytes();
        if canonical {
            assert_eq!(
                reencoded, mutated,
                "decoder accepted non-canonical bytes for {decoded:?}"
            );
        }
        // Whatever was decoded is a stable artifact, never a value that
        // silently drifts on the next store round-trip.
        let again = T::from_bytes(&reencoded).expect("re-encoding must decode");
        assert_eq!(again, decoded, "decoded artifact drifted on round-trip");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn mutated_diagnostic_encodings_never_panic_or_drift(
        d in arb_diagnostic(),
        m in arb_mutation(),
    ) {
        check_mutation(&d, &m, true);
    }

    #[test]
    fn mutated_schedule_encodings_never_panic_or_drift(
        s in arb_schedule(),
        m in arb_mutation(),
    ) {
        check_mutation(&s, &m, true);
    }

    #[test]
    fn mutated_cost_table_encodings_never_panic_or_drift(
        t in arb_cost_table(),
        m in arb_mutation(),
    ) {
        // BTreeMap decode normalises key order, so only the fixpoint
        // guarantee applies — never bitwise canonicality.
        check_mutation(&t, &m, false);
    }

    #[test]
    fn arbitrary_byte_soup_never_panics_any_decoder(
        bytes in vec(any::<u8>(), 0..64),
    ) {
        // No structure at all: every decoder must reject or accept
        // without panicking and without multi-gigabyte allocations
        // (read_len caps collection lengths by the remaining payload).
        let _ = Diagnostic::from_bytes(&bytes);
        let _ = Schedule::from_bytes(&bytes);
        let _ = CostTable::from_bytes(&bytes);
        let _ = Fingerprint::from_bytes(&bytes);
    }
}
