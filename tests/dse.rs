//! Integration tests for the `argo-dse` design-space exploration engine:
//! Pareto-front correctness as a property over arbitrary objective sets,
//! and end-to-end determinism with artifact-cache reuse across runs.

use argo_core::SchedulerKind;
use argo_dse::pareto::{dominates, pareto_front};
use argo_dse::{DesignSpace, Explorer, PlatformKind};
use argo_ir::parse::parse_program;
use argo_store::Store;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The extracted front never contains a dominated point, and every
    /// excluded point is dominated by someone.
    #[test]
    fn pareto_front_contains_no_dominated_point(
        objs in proptest::collection::vec((1u64..9, 1u64..500, 0u64..5), 1..40),
    ) {
        let objs: Vec<[u64; 3]> =
            objs.into_iter().map(|(c, w, s)| [c, w, s * 4096]).collect();
        let front = pareto_front(&objs);
        prop_assert!(!front.is_empty(), "a non-empty set has a non-empty front");
        for &i in &front {
            for o in &objs {
                prop_assert!(
                    !dominates(o, &objs[i]),
                    "front member {:?} dominated by {:?}",
                    objs[i],
                    o
                );
            }
        }
        for i in 0..objs.len() {
            if !front.contains(&i) {
                prop_assert!(
                    objs.iter().any(|o| dominates(o, &objs[i])),
                    "excluded point {:?} is dominated by nobody",
                    objs[i]
                );
            }
        }
    }
}

const TINY: &str = r#"
    real main(real a[64], real b[64]) {
        real s; int i;
        s = 0.0;
        for (i = 0; i < 64; i = i + 1) {
            b[i] = sqrt(a[i]) * 2.0 + sin(a[i]);
        }
        for (i = 0; i < 64; i = i + 1) { s = s + b[i]; }
        return s;
    }
"#;

fn tiny_space() -> DesignSpace {
    DesignSpace::new()
        .app("tiny")
        .platforms(vec![PlatformKind::Bus, PlatformKind::Noc])
        .cores(vec![1, 2, 4])
        .schedulers(vec![SchedulerKind::List, SchedulerKind::Anneal])
}

/// Two runs of the same `DesignSpace` on one explorer produce identical
/// reports, and the second run is served entirely from the artifact
/// cache (every frontend/seed-cost lookup hits).
#[test]
fn repeated_exploration_is_deterministic_and_cached() {
    let mut explorer = Explorer::with_threads(4);
    explorer.register_program("tiny", parse_program(TINY).unwrap(), "main");
    let space = tiny_space();

    let first = explorer.explore(&space);
    let after_first = explorer.cache_stats();
    let second = explorer.explore(&space);
    let after_second = explorer.cache_stats();

    assert_eq!(first.rows.len(), 12);
    assert_eq!(first.failures(), 0);
    assert!(!first.pareto.is_empty());
    assert_eq!(
        first.to_csv(),
        second.to_csv(),
        "reports must be byte-identical"
    );
    assert_eq!(first.pareto, second.pareto);

    // The first run misses at least once; the second run adds hits only
    // (across all three tiers — frontend, seed costs and schedules).
    assert!(after_first.misses() > 0);
    assert!(
        after_first.sched_misses > 0,
        "backend rounds must populate the schedule tier"
    );
    assert_eq!(
        after_second.misses(),
        after_first.misses(),
        "second run must not rebuild in any tier"
    );
    let second_run_hits = after_second.hits() - after_first.hits();
    assert!(
        second_run_hits >= 12 * 2,
        "every point hits the frontend and seed-cost tiers on the second \
         run (plus one schedule hit per feedback round): got {second_run_hits}"
    );
    assert_eq!(
        after_second.sched_hits - after_first.sched_hits,
        after_first.sched_hits + after_first.sched_misses,
        "the second run repeats the first run's schedule lookups, all hits"
    );

    // Shared-prefix reuse already within the first run: the scheduler
    // axis (2 values) shares artifacts, so hits happen before run two.
    assert!(
        after_first.hits() > 0,
        "shared-prefix points must hit within one run"
    );

    // The PR 2 acceptance bar, on the tiers it was written for: with
    // the canonical fingerprint keys, the re-explored sweep keeps an
    // artifact-tier (frontend + seed-cost) hit rate of at least 75%.
    let artifact_hits = after_second.frontend_hits + after_second.cost_hits;
    let artifact_total = artifact_hits + after_second.frontend_misses + after_second.cost_misses;
    let artifact_rate = artifact_hits as f64 / artifact_total as f64;
    assert!(
        artifact_rate >= 0.75,
        "artifact-tier hit rate dropped below 75%: {artifact_rate:.2}"
    );
    // The third tier is colder on a single sweep (most points are
    // distinct scheduler inputs) but must reach 50% once the sweep has
    // been repeated — every second-run lookup hits.
    let sched_rate = after_second.sched_hits as f64
        / (after_second.sched_hits + after_second.sched_misses) as f64;
    assert!(
        sched_rate >= 0.5,
        "schedule-tier hit rate below 50% after a repeat sweep: {sched_rate:.2}"
    );
}

/// The persistent path of the same guarantee: a *fresh* explorer (the
/// cold-process shape — its in-memory cache is empty) over a store dir
/// populated by an earlier explorer replays every point from the
/// archive, reports a ≥95% combined hit rate, and emits byte-identical
/// reports.
#[test]
fn cold_explorer_over_a_populated_store_warm_starts() {
    let dir = std::env::temp_dir().join(format!("argo-dse-warm-start-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let space = tiny_space();

    let cold_report = {
        let mut ex = Explorer::with_threads(4);
        ex.register_program("tiny", parse_program(TINY).unwrap(), "main");
        let ex = ex.with_store(Arc::new(Store::open(&dir).unwrap()));
        let report = ex.explore(&space);
        // The cold run misses the store everywhere (tiers and archive)
        // but populates it.
        assert_eq!(report.cache.point_store_hits, 0);
        assert_eq!(report.cache.point_store_misses, 12);
        assert!(report.cache.store_hits() == 0);
        report
    };
    assert_eq!(cold_report.failures(), 0);

    let warm_report = {
        let mut ex = Explorer::with_threads(4);
        ex.register_program("tiny", parse_program(TINY).unwrap(), "main");
        let ex = ex.with_store(Arc::new(Store::open(&dir).unwrap()));
        ex.explore(&space)
    };

    // Every point replays from the archive: no pipeline stage runs.
    assert_eq!(warm_report.cache.point_store_hits, 12);
    assert_eq!(warm_report.cache.point_store_misses, 0);
    assert_eq!(
        warm_report.timing.frontend.runs + warm_report.timing.backend.runs,
        0,
        "a full warm start runs no stages"
    );
    let combined = warm_report.cache.combined_hit_rate();
    assert!(
        combined >= 0.95,
        "combined hit rate through the populated store must be ≥95%: {combined:.2}"
    );

    // And the replayed report is byte-identical to the cold one.
    assert_eq!(cold_report.to_csv(), warm_report.to_csv());
    assert_eq!(cold_report.pareto, warm_report.pareto);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The incremental half of the contract: after a program edit, the
/// point fingerprints differ, so a warm explorer re-evaluates the
/// changed points instead of replaying stale outcomes — and the
/// original program still replays from its own entries.
#[test]
fn changed_fingerprints_re_evaluate_instead_of_replaying() {
    let dir = std::env::temp_dir().join(format!("argo-dse-incr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let space = DesignSpace::new()
        .app("tiny")
        .cores(vec![2])
        .schedulers(vec![SchedulerKind::List, SchedulerKind::Anneal]);
    // The "edit": same shape, one constant changed.
    let edited = TINY.replace("* 2.0", "* 3.0");
    assert_ne!(edited, TINY);

    let run = |src: &str| {
        let mut ex = Explorer::with_threads(2);
        ex.register_program("tiny", parse_program(src).unwrap(), "main");
        let ex = ex.with_store(Arc::new(Store::open(&dir).unwrap()));
        ex.explore(&space).cache
    };

    let first = run(TINY);
    assert_eq!((first.point_store_hits, first.point_store_misses), (0, 2));

    // Edited program → different content fingerprint → every point key
    // changes → all archive lookups miss and re-evaluate.
    let after_edit = run(&edited);
    assert_eq!(
        (after_edit.point_store_hits, after_edit.point_store_misses),
        (0, 2),
        "changed inputs must not replay archived outcomes"
    );

    // Both versions now sit in the archive: each replays fully.
    let original_again = run(TINY);
    assert_eq!(
        (
            original_again.point_store_hits,
            original_again.point_store_misses
        ),
        (2, 0)
    );
    let edited_again = run(&edited);
    assert_eq!(
        (
            edited_again.point_store_hits,
            edited_again.point_store_misses
        ),
        (2, 0)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same space explored by a fresh explorer with a different thread
/// count yields the same CSV — ordering is deterministic, not luck.
#[test]
fn thread_count_is_invisible_in_reports() {
    let mut reports = Vec::new();
    for threads in [1, 3, 8] {
        let mut ex = Explorer::with_threads(threads);
        ex.register_program("tiny", parse_program(TINY).unwrap(), "main");
        reports.push(ex.explore(&tiny_space()).to_csv());
    }
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[1], reports[2]);
}

/// End-to-end over a real use case: the sweep from the issue's acceptance
/// criterion shape (one app × 2 platforms × cores × schedulers) completes
/// with a non-empty front and nonzero cache reuse.
#[test]
fn egpws_acceptance_shape_sweep() {
    let explorer = Explorer::new();
    let space = DesignSpace::new()
        .app("egpws")
        .platforms(vec![PlatformKind::Bus, PlatformKind::Noc])
        .cores(vec![1, 2])
        .schedulers(vec![SchedulerKind::List, SchedulerKind::Anneal]);
    let report = explorer.explore(&space);
    assert_eq!(report.rows.len(), 8);
    assert_eq!(report.failures(), 0);
    assert!(!report.pareto.is_empty());
    assert!(
        report.cache.hits() > 0,
        "scheduler axis must share artifacts"
    );
    // Single-core rows must have speedup 1.
    for (_, m) in report.successes() {
        assert!(m.par_bound > 0);
    }
    let json = report.to_json();
    assert!(json.contains("\"cache\""));
}
