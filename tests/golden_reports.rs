//! Golden tests pinning `BackendResult::report()` byte-identical for the
//! three use cases across all MHP modes.
//!
//! The golden files under `tests/golden/` were generated from the
//! pre-slot-resolution tool-chain, so these tests prove the interning /
//! slot-resolution rework is a pure performance change: every analysis
//! number, schedule assignment and contender count in the human report
//! is unchanged to the byte.
//!
//! Regenerate (only after an *intentional* behaviour change) with:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_reports
//! ```

use argo_adl::Platform;
use argo_core::{ToolchainConfig, Toolflow};
use argo_wcet::system::MhpMode;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_or_update(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden `{}` ({e}); run with GOLDEN_UPDATE=1", name));
    assert_eq!(
        expected, actual,
        "report for `{name}` drifted from the pinned golden"
    );
}

#[test]
fn reports_match_pre_resolution_goldens() {
    let platform = Platform::xentium_manycore(4);
    for uc in argo_apps::all_use_cases(42) {
        for mhp in [MhpMode::Naive, MhpMode::Static, MhpMode::Windows] {
            let cfg = ToolchainConfig {
                mhp,
                ..Default::default()
            };
            let r = Toolflow::new(uc.program.clone(), uc.entry)
                .platform(&platform)
                .config(cfg)
                .run()
                .expect("compile");
            check_or_update(&format!("{}_{}.report.txt", uc.name, mhp), &r.report());
        }
    }
}
