//! Differential property tests for the slot-resolution rework
//! (`argo_ir::resolve`): the slot-resolved interpreter must be
//! *observationally identical* to a straightforward name-keyed walk of
//! the AST.
//!
//! The reference walker below is deliberately naive — a `HashMap<String,
//! Binding>` environment and direct AST recursion, the exact shape the
//! interpreter had before interning — so any divergence (slot aliasing,
//! wrong frame layout, call-binding mix-up, dropped coercion) shows up
//! as a value mismatch. Scalar results and all array outputs are
//! compared **bitwise** (`f64::to_bits`), not approximately.

use argo_ir::ast::*;
use argo_ir::interp::{ArgVal, ArrayData, Interp, NullHook, ScalarVal};
use argo_ir::parse::parse_program;
use argo_ir::types::{Scalar, Type};
use proptest::prelude::*;
use std::collections::HashMap;

const ARRAY: usize = 24;

// ---------------------------------------------------------------------
// Name-keyed reference walker (pre-resolution interpreter semantics).
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Bind {
    Scalar(ScalarVal),
    Uninit(Scalar),
    Array(usize),
}

struct RefWalker<'p> {
    program: &'p Program,
    arrays: Vec<ArrayData>,
}

type Env = HashMap<String, Bind>;

#[derive(Debug)]
enum RefFlow {
    Normal,
    Return(Option<ScalarVal>),
}

impl<'p> RefWalker<'p> {
    fn coerce(v: ScalarVal, to: Scalar) -> ScalarVal {
        match (v, to) {
            (ScalarVal::Int(x), Scalar::Real) => ScalarVal::Real(x as f64),
            (v, _) => v,
        }
    }

    fn call(&mut self, name: &str, args: Vec<ArgVal>) -> (Option<ScalarVal>, Vec<ArrayData>) {
        let func = self.program.function(name).expect("function exists");
        let mut env = Env::new();
        for (p, a) in func.params.iter().zip(args) {
            match (a, &p.ty) {
                (ArgVal::Scalar(v), Type::Scalar(s)) => {
                    env.insert(p.name.clone(), Bind::Scalar(Self::coerce(v, *s)));
                }
                (ArgVal::Array(data), Type::Array { .. }) => {
                    self.arrays.push(data);
                    env.insert(p.name.clone(), Bind::Array(self.arrays.len() - 1));
                }
                _ => panic!("argument kind mismatch"),
            }
        }
        let mut ret = None;
        for s in &func.body.stmts {
            if let RefFlow::Return(v) = self.stmt(&mut env, s) {
                ret = v;
                break;
            }
        }
        let outs = func
            .params
            .iter()
            .filter(|p| p.ty.is_array())
            .map(|p| match env[&p.name] {
                Bind::Array(id) => self.arrays[id].clone(),
                _ => panic!("array param lost"),
            })
            .collect();
        (ret, outs)
    }

    fn block(&mut self, env: &mut Env, b: &Block) -> RefFlow {
        for s in &b.stmts {
            if let RefFlow::Return(v) = self.stmt(env, s) {
                return RefFlow::Return(v);
            }
        }
        RefFlow::Normal
    }

    fn stmt(&mut self, env: &mut Env, s: &Stmt) -> RefFlow {
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                let b = match ty {
                    Type::Scalar(sc) => match init {
                        Some(e) => Bind::Scalar(Self::coerce(self.eval(env, e), *sc)),
                        None => Bind::Uninit(*sc),
                    },
                    Type::Array { elem, dims } => {
                        self.arrays.push(ArrayData::zeroed(*elem, dims.clone()));
                        Bind::Array(self.arrays.len() - 1)
                    }
                };
                env.insert(name.clone(), b);
                RefFlow::Normal
            }
            StmtKind::Assign { target, value } => {
                let v = self.eval(env, value);
                match target {
                    LValue::Var(n) => {
                        let sc = match env.get(n).expect("bound") {
                            Bind::Scalar(old) => old.scalar(),
                            Bind::Uninit(sc) => *sc,
                            Bind::Array(_) => panic!("whole-array assign"),
                        };
                        env.insert(n.clone(), Bind::Scalar(Self::coerce(v, sc)));
                    }
                    LValue::ArrayElem { array, indices } => {
                        let idx: Vec<i64> = indices
                            .iter()
                            .map(|e| match self.eval(env, e) {
                                ScalarVal::Int(i) => i,
                                other => panic!("non-int index {other:?}"),
                            })
                            .collect();
                        let id = match env[array] {
                            Bind::Array(id) => id,
                            _ => panic!("not an array"),
                        };
                        let arr = &mut self.arrays[id];
                        let mut flat = 0usize;
                        for (&i, &d) in idx.iter().zip(&arr.dims) {
                            assert!(i >= 0 && (i as usize) < d, "oob in reference walk");
                            flat = flat * d + i as usize;
                        }
                        let elem = arr.elem;
                        arr.data[flat] = Self::coerce(v, elem);
                    }
                }
                RefFlow::Normal
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = matches!(self.eval(env, cond), ScalarVal::Bool(true));
                self.block(env, if c { then_blk } else { else_blk })
            }
            StmtKind::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let lo = match self.eval(env, lo) {
                    ScalarVal::Int(v) => v,
                    other => panic!("non-int bound {other:?}"),
                };
                let hi = match self.eval(env, hi) {
                    ScalarVal::Int(v) => v,
                    other => panic!("non-int bound {other:?}"),
                };
                let mut i = lo;
                while i < hi {
                    env.insert(var.clone(), Bind::Scalar(ScalarVal::Int(i)));
                    if let RefFlow::Return(v) = self.block(env, body) {
                        return RefFlow::Return(v);
                    }
                    i += *step;
                }
                env.insert(var.clone(), Bind::Scalar(ScalarVal::Int(i)));
                RefFlow::Normal
            }
            StmtKind::While { cond, bound, body } => {
                let mut iters = 0u64;
                loop {
                    if !matches!(self.eval(env, cond), ScalarVal::Bool(true)) {
                        break;
                    }
                    iters += 1;
                    assert!(iters <= *bound, "while bound exceeded in reference walk");
                    if let RefFlow::Return(v) = self.block(env, body) {
                        return RefFlow::Return(v);
                    }
                }
                RefFlow::Normal
            }
            StmtKind::Call { name, args } => {
                self.eval_call(env, name, args);
                RefFlow::Normal
            }
            StmtKind::Return { value } => {
                RefFlow::Return(value.as_ref().map(|e| self.eval(env, e)))
            }
        }
    }

    fn eval_call(&mut self, env: &mut Env, name: &str, args: &[Expr]) -> Option<ScalarVal> {
        if let Some(sig) = argo_ir::intrinsics::lookup(name) {
            let vals: Vec<ScalarVal> = args
                .iter()
                .zip(sig.params)
                .map(|(a, &pt)| Self::coerce(self.eval(env, a), pt))
                .collect();
            let r = |i: usize| match vals[i] {
                ScalarVal::Real(v) => v,
                ScalarVal::Int(v) => v as f64,
                other => panic!("non-real intrinsic arg {other:?}"),
            };
            let n = |i: usize| match vals[i] {
                ScalarVal::Int(v) => v,
                other => panic!("non-int intrinsic arg {other:?}"),
            };
            return Some(match name {
                "sqrt" => ScalarVal::Real(r(0).sqrt()),
                "sin" => ScalarVal::Real(r(0).sin()),
                "cos" => ScalarVal::Real(r(0).cos()),
                "exp" => ScalarVal::Real(r(0).exp()),
                "pow" => ScalarVal::Real(r(0).powf(r(1))),
                "floor" => ScalarVal::Real(r(0).floor()),
                "fabs" => ScalarVal::Real(r(0).abs()),
                "fmin" => ScalarVal::Real(r(0).min(r(1))),
                "fmax" => ScalarVal::Real(r(0).max(r(1))),
                "iabs" => ScalarVal::Int(n(0).wrapping_abs()),
                "imin" => ScalarVal::Int(n(0).min(n(1))),
                "imax" => ScalarVal::Int(n(0).max(n(1))),
                other => panic!("intrinsic `{other}` not modelled by the reference walker"),
            });
        }
        let func = self.program.function(name).expect("callee exists").clone();
        let mut callee_env = Env::new();
        for (a, p) in args.iter().zip(&func.params) {
            let b = if p.ty.is_array() {
                let Expr::Var(arg_name) = a else {
                    panic!("array arg must be a variable")
                };
                match env[arg_name] {
                    Bind::Array(id) => Bind::Array(id),
                    _ => panic!("not an array"),
                }
            } else {
                Bind::Scalar(Self::coerce(self.eval(env, a), p.ty.elem()))
            };
            callee_env.insert(p.name.clone(), b);
        }
        for s in &func.body.stmts {
            if let RefFlow::Return(v) = self.stmt(&mut callee_env, s) {
                return v;
            }
        }
        None
    }

    fn eval(&mut self, env: &mut Env, e: &Expr) -> ScalarVal {
        match e {
            Expr::IntLit(v) => ScalarVal::Int(*v),
            Expr::RealLit(v) => ScalarVal::Real(*v),
            Expr::BoolLit(v) => ScalarVal::Bool(*v),
            Expr::Var(n) => match env.get(n).expect("bound scalar") {
                Bind::Scalar(v) => *v,
                other => panic!("`{n}` not a scalar: {other:?}"),
            },
            Expr::ArrayElem { array, indices } => {
                let idx: Vec<i64> = indices
                    .iter()
                    .map(|e| match self.eval(env, e) {
                        ScalarVal::Int(i) => i,
                        other => panic!("non-int index {other:?}"),
                    })
                    .collect();
                let id = match env[array] {
                    Bind::Array(id) => id,
                    _ => panic!("not an array"),
                };
                let arr = &self.arrays[id];
                let mut flat = 0usize;
                for (&i, &d) in idx.iter().zip(&arr.dims) {
                    assert!(i >= 0 && (i as usize) < d, "oob in reference walk");
                    flat = flat * d + i as usize;
                }
                arr.data[flat]
            }
            Expr::Unary { op, arg } => {
                let v = self.eval(env, arg);
                match (op, v) {
                    (UnOp::Neg, ScalarVal::Int(x)) => ScalarVal::Int(x.wrapping_neg()),
                    (UnOp::Neg, ScalarVal::Real(x)) => ScalarVal::Real(-x),
                    (UnOp::Not, ScalarVal::Bool(x)) => ScalarVal::Bool(!x),
                    other => panic!("bad unary {other:?}"),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval(env, lhs);
                let r = self.eval(env, rhs);
                ref_binop(*op, l, r)
            }
            Expr::Call { name, args } => self
                .eval_call(env, name, args)
                .expect("void call in expression"),
            Expr::Cast { to, arg } => {
                let v = self.eval(env, arg);
                match (v, to) {
                    (ScalarVal::Int(x), Scalar::Int) => ScalarVal::Int(x),
                    (ScalarVal::Int(x), Scalar::Real) => ScalarVal::Real(x as f64),
                    (ScalarVal::Real(x), Scalar::Int) => ScalarVal::Int(x as i64),
                    (ScalarVal::Real(x), Scalar::Real) => ScalarVal::Real(x),
                    (ScalarVal::Bool(x), Scalar::Int) => ScalarVal::Int(x as i64),
                    other => panic!("cast {other:?} not modelled"),
                }
            }
        }
    }
}

fn ref_binop(op: BinOp, l: ScalarVal, r: ScalarVal) -> ScalarVal {
    use BinOp::*;
    if op.is_logical() {
        let (ScalarVal::Bool(a), ScalarVal::Bool(b)) = (l, r) else {
            panic!("logical on non-bool")
        };
        return ScalarVal::Bool(match op {
            And => a && b,
            Or => a || b,
            _ => unreachable!(),
        });
    }
    if op.is_comparison() {
        if let (ScalarVal::Int(a), ScalarVal::Int(b)) = (l, r) {
            return ScalarVal::Bool(match op {
                Eq => a == b,
                Ne => a != b,
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            });
        }
        let (a, b) = (as_real(l), as_real(r));
        return ScalarVal::Bool(match op {
            Eq => a == b,
            Ne => a != b,
            Lt => a < b,
            Le => a <= b,
            Gt => a > b,
            Ge => a >= b,
            _ => unreachable!(),
        });
    }
    if let (ScalarVal::Int(a), ScalarVal::Int(b)) = (l, r) {
        return ScalarVal::Int(match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Mul => a.wrapping_mul(b),
            Div => a.wrapping_div(b),
            Rem => a.wrapping_rem(b),
            _ => unreachable!(),
        });
    }
    let (a, b) = (as_real(l), as_real(r));
    ScalarVal::Real(match op {
        Add => a + b,
        Sub => a - b,
        Mul => a * b,
        Div => a / b,
        _ => unreachable!(),
    })
}

fn as_real(v: ScalarVal) -> f64 {
    match v {
        ScalarVal::Real(x) => x,
        ScalarVal::Int(x) => x as f64,
        ScalarVal::Bool(_) => panic!("bool has no real view"),
    }
}

// ---------------------------------------------------------------------
// Generators (same family as tests/property.rs, plus a user helper
// call so call-site binding is exercised).
// ---------------------------------------------------------------------

fn arb_real_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0u32..5).prop_map(|v| format!("{v}.5")),
        Just("x".to_string()),
        Just("halve(x)".to_string()),
        (0usize..4).prop_map(|o| format!("a[imin(i + {o}, {})]", ARRAY - 1)),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} + {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} * {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} - {r})")),
            inner.clone().prop_map(|e| format!("sqrt(fabs({e}))")),
            inner.prop_map(|e| format!("fmin({e}, 100.0)")),
        ]
    })
    .boxed()
}

fn arb_program() -> BoxedStrategy<String> {
    (
        arb_real_expr(2),
        arb_real_expr(2),
        1usize..=ARRAY,
        1usize..=8,
        any::<bool>(),
    )
        .prop_map(|(e1, e2, trip, inner_trip, with_branch)| {
            let body = if with_branch {
                format!("if (x > 2.0) {{ b[i] = {e1}; }} else {{ b[i] = {e2}; }}")
            } else {
                format!("b[i] = {e1};")
            };
            format!(
                "real halve(real v) {{ return v * 0.5 + 0.25; }}\n\
                 void main(real a[{ARRAY}], real b[{ARRAY}]) {{\n\
                   real x; int i; int j;\n\
                   x = 1.0;\n\
                   for (i = 0; i < {trip}; i = i + 1) {{\n\
                     for (j = 0; j < {inner_trip}; j = j + 1) {{ x = x + a[j] * 0.125; }}\n\
                     {body}\n\
                   }}\n\
                 }}"
            )
        })
        .boxed()
}

fn input_args(seed: u64) -> Vec<ArgVal> {
    let vals: Vec<f64> = (0..ARRAY)
        .map(|k| ((k as u64 * 7 + seed) % 13) as f64 * 0.5)
        .collect();
    vec![
        ArgVal::Array(ArrayData::from_reals(&vals)),
        ArgVal::Array(ArrayData::from_reals(&[0.0; ARRAY])),
    ]
}

fn assert_bitwise_eq(a: &ScalarVal, b: &ScalarVal, what: &str) {
    let same = match (a, b) {
        (ScalarVal::Real(x), ScalarVal::Real(y)) => x.to_bits() == y.to_bits(),
        (x, y) => x == y,
    };
    assert!(same, "{what}: slot-resolved {a:?} != reference {b:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Slot-resolved execution is bitwise-identical to the name-keyed
    /// reference walk on arbitrary generated programs.
    #[test]
    fn resolution_is_semantics_preserving(src in arb_program(), seed in 0u64..32) {
        let p = parse_program(&src).expect("generated program parses");
        argo_ir::validate::validate(&p).expect("generated program validates");

        let resolved = Interp::new(&p)
            .call_full("main", input_args(seed), &mut NullHook)
            .expect("slot-resolved run succeeds");

        let mut walker = RefWalker { program: &p, arrays: Vec::new() };
        let (ref_ret, ref_arrays) = walker.call("main", input_args(seed));

        prop_assert_eq!(resolved.ret.is_some(), ref_ret.is_some());
        if let (Some(a), Some(b)) = (&resolved.ret, &ref_ret) {
            assert_bitwise_eq(a, b, "return value");
        }
        prop_assert_eq!(resolved.arrays.len(), ref_arrays.len());
        for ((name, got), want) in resolved.arrays.iter().zip(&ref_arrays) {
            prop_assert_eq!(got.dims.clone(), want.dims.clone());
            for (i, (g, w)) in got.data.iter().zip(&want.data).enumerate() {
                assert_bitwise_eq(g, w, &format!("{name}[{i}]"));
            }
        }
    }
}

/// Deterministic spot check so a generator regression fails loudly and
/// the differential harness itself is exercised without proptest.
#[test]
fn reference_walker_matches_on_fixed_program() {
    let src = "real halve(real v) { return v * 0.5 + 0.25; }\n\
               void main(real a[24], real b[24]) {\n\
                 real x; int i; int j;\n\
                 x = 1.0;\n\
                 for (i = 0; i < 9; i = i + 1) {\n\
                   for (j = 0; j < 3; j = j + 1) { x = x + a[j] * 0.125; }\n\
                   if (x > 2.0) { b[i] = halve(x) + a[imin(i + 1, 23)]; }\n\
                   else { b[i] = sqrt(fabs(x - 3.5)); }\n\
                 }\n\
               }";
    let p = parse_program(src).unwrap();
    argo_ir::validate::validate(&p).unwrap();
    let resolved = Interp::new(&p)
        .call_full("main", input_args(3), &mut NullHook)
        .unwrap();
    let mut walker = RefWalker {
        program: &p,
        arrays: Vec::new(),
    };
    let (_, ref_arrays) = walker.call("main", input_args(3));
    let b_resolved = &resolved.arrays[1].1;
    for (g, w) in b_resolved.data.iter().zip(&ref_arrays[1].data) {
        assert_bitwise_eq(g, w, "b");
    }
}
