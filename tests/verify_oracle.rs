//! Mutation harness and simulator-backed differential oracle for
//! `argo-verify`.
//!
//! Two directions of evidence that the verifier separates sound from
//! unsound parallelizations:
//!
//! * **Mutations** — re-seed the PR 1 dependence bug (an extractor
//!   that loses the edges ordering array accesses after their
//!   allocation), corrupt schedule start times, overflow a scratchpad
//!   and drop a synchronization wait; every mutation must be flagged,
//!   while the unmutated pipeline output stays clean.
//! * **Differential oracle** (property) — any verifier-clean schedule,
//!   replayed in the cycle-charging simulator, produces exactly the
//!   outputs of the sequential reference interpretation.

use argo_adl::{CoreId, MemSpace, MemoryMap, Placement, Platform};
use argo_core::{ErrorCode, SchedulerKind, ToolchainConfig, Toolflow};
use argo_ir::interp::{ArgVal, ArrayData, ScalarVal};
use argo_ir::parse::parse_program;
use argo_ir::types::Scalar;
use argo_sim::{sequential_reference, simulate, SimConfig};
use argo_verify::{race::check_races, schedule::check_plans, schedule::check_schedule};
use argo_verify::{verify_backend, VerifyConfig};
use argo_wcet::system::MhpMode;
use proptest::prelude::*;

/// The PR 1 regression shape: a local array whose declaration
/// (allocation + implicit whole-array definition) must order before
/// the loops that use it.
const DECL_BEFORE_USE: &str = r#"
    void main(real out[16]) {
        real buf[16];
        int i;
        for (i = 0; i < 16; i = i + 1) { buf[i] = 2.0; }
        for (i = 0; i < 16; i = i + 1) { out[i] = buf[i] + 1.0; }
    }
"#;

/// Map + reduce fixture for the differential oracle.
const MAP_REDUCE: &str = r#"
    void main(real a[32], real b[32], real acc[4]) {
        int i;
        real s;
        s = 0.0;
        for (i = 0; i < 32; i = i + 1) { b[i] = a[i] * 2.0 + 1.0; }
        for (i = 0; i < 32; i = i + 1) { s = s + b[i]; }
        acc[0] = s;
    }
"#;

const ALL_MODES: [MhpMode; 3] = [MhpMode::Naive, MhpMode::Static, MhpMode::Windows];

fn compile(src: &str, platform: &Platform, cfg: ToolchainConfig) -> argo_core::BackendResult {
    let program = parse_program(src).expect("fixture parses");
    Toolflow::new(program, "main")
        .platform(platform)
        .config(cfg)
        .run()
        .expect("fixture compiles")
}

#[test]
fn unmutated_pipeline_is_clean_and_seeded_reorder_bug_is_caught() {
    let platform = Platform::xentium_manycore(2);
    let result = compile(DECL_BEFORE_USE, &platform, ToolchainConfig::default());

    // Control: the real pipeline races nowhere, under any MHP notion.
    for mode in ALL_MODES {
        assert!(
            check_races(&result, mode).is_empty(),
            "false positive under {mode}"
        );
    }

    // Mutation: an extractor that lost its dependence edges — the PR 1
    // bug class, where schedulers become free to reorder the array
    // accesses before the allocation/initialization.
    let mut mutated = result;
    mutated.parallel.graph.edges.clear();
    let races = check_races(&mutated, MhpMode::Naive);
    assert!(!races.is_empty(), "dropped edges must surface as races");
    assert!(
        races.iter().any(|f| {
            f.diagnostic.code == ErrorCode::DataRace
                && f.diagnostic.entity.as_deref() == Some("buf")
        }),
        "expected a data race on `buf`, got: {races:?}"
    );
}

#[test]
fn mutated_schedule_start_time_is_flagged_unsound() {
    let platform = Platform::xentium_manycore(2);
    let result = compile(DECL_BEFORE_USE, &platform, ToolchainConfig::default());
    let graph = &result.parallel.graph;

    // Control.
    assert!(check_schedule(graph, &platform, &result.parallel.schedule, None).is_empty());

    // Yank a dependent task to cycle 0: its predecessor now finishes
    // after it starts.
    let &(f, t, _) = graph
        .edges
        .iter()
        .find(|&&(f, _, _)| result.parallel.schedule.finish[f] > 0)
        .expect("fixture has dependence edges");
    let mut sched = result.parallel.schedule.clone();
    sched.start[t] = 0;
    sched.finish[t] = graph.cost[t];
    let findings = check_schedule(graph, &platform, &sched, None);
    assert!(
        findings
            .iter()
            .any(|x| x.diagnostic.code == ErrorCode::UnsoundSchedule),
        "start-time mutation on edge ({f},{t}) must be flagged, got: {findings:?}"
    );
}

#[test]
fn scratchpad_overflow_is_flagged() {
    let platform = Platform::xentium_manycore(2);
    let result = compile(DECL_BEFORE_USE, &platform, ToolchainConfig::default());
    let mut mem = MemoryMap::new();
    mem.insert(
        "huge",
        Placement {
            space: MemSpace::Spm(CoreId(0)),
            base_addr: 0,
            size_bytes: 1 << 30,
        },
    );
    let findings = check_schedule(
        &result.parallel.graph,
        &platform,
        &result.parallel.schedule,
        Some(&mem),
    );
    assert!(
        findings
            .iter()
            .any(|f| f.diagnostic.code == ErrorCode::PlacementOverflow),
        "1 GiB in a 16 KiB scratchpad must overflow, got: {findings:?}"
    );
}

#[test]
fn dropped_wait_step_is_flagged_as_comm_ordering() {
    let platform = Platform::xentium_manycore(2);
    let cfg = ToolchainConfig::default();
    let result = compile(MAP_REDUCE, &platform, cfg);
    let pp = &result.parallel;
    assert!(check_plans(pp).is_empty(), "control plans must be clean");

    // Find a plan containing a Wait and drop it.
    let mut mutated = pp.clone();
    let mut dropped = false;
    for plan in &mut mutated.plans {
        if let Some(pos) = plan
            .steps
            .iter()
            .position(|s| matches!(s, argo_parir::Step::Wait { .. }))
        {
            plan.steps.remove(pos);
            dropped = true;
            break;
        }
    }
    if !dropped {
        // Single-core placement this round — nothing to desynchronize.
        return;
    }
    let findings = check_plans(&mutated);
    assert!(
        findings
            .iter()
            .any(|f| f.diagnostic.code == ErrorCode::CommOrdering),
        "missing wait must be flagged, got: {findings:?}"
    );
}

fn real_array(n: usize, f: impl Fn(usize) -> f64) -> ArgVal {
    ArgVal::Array(ArrayData {
        elem: Scalar::Real,
        dims: vec![n],
        data: (0..n).map(|i| ScalarVal::Real(f(i))).collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Verifier-clean schedules replayed in the simulator agree with
    /// the sequential interpretation, across random core counts,
    /// schedulers and MHP modes.
    #[test]
    fn verifier_clean_schedules_replay_to_sequential_outputs(
        cores in 1usize..5,
        sched_pick in 0u8..3,
        mhp_pick in 0u8..3,
        seed in 0u64..512,
    ) {
        let scheduler = match sched_pick {
            0 => SchedulerKind::List,
            1 => SchedulerKind::BranchAndBound,
            _ => SchedulerKind::Anneal,
        };
        let mhp = ALL_MODES[mhp_pick as usize];
        let cfg = ToolchainConfig { scheduler, mhp, ..Default::default() };
        let platform = Platform::xentium_manycore(cores);
        let result = compile(MAP_REDUCE, &platform, cfg);

        let report = verify_backend(&result, &platform, &VerifyConfig { mhp, allow: vec![] });
        prop_assert!(report.gate().is_ok(), "{}", report.render_text());

        let args = vec![
            real_array(32, |i| (seed as f64) * 0.5 + i as f64),
            real_array(32, |_| 0.0),
            real_array(4, |_| 0.0),
        ];
        let program = parse_program(MAP_REDUCE).unwrap();
        let expected = sequential_reference(&program, "main", args.clone())
            .expect("sequential reference runs");
        let sim = simulate(&result.parallel, &platform, args, &SimConfig::default())
            .expect("parallel simulation runs");
        prop_assert_eq!(sim.outputs, expected);
    }
}
