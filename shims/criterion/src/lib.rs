//! Offline drop-in replacement for the subset of `criterion` this workspace
//! uses (the container has no network access). Benches keep their sources
//! unchanged and still *run and time* each closure — without the real
//! crate's statistics, plots or regression store. Each `bench_function`
//! executes a warm-up iteration and then `sample_size` timed iterations,
//! reporting min/mean/max wall time to stdout.

use std::time::Instant;

/// Returns `true` when the bench harness was invoked with `--test`
/// (`cargo bench -- --test`): each benchmark body runs exactly once,
/// untimed — a CI smoke mode matching real criterion's flag, free of
/// timing flakiness.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Per-iteration timing handle passed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `sample_size` executions of `f` (after one warm-up call).
    /// In `--test` mode, runs `f` once and records nothing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

fn report(group: &str, name: &str, samples: &[f64]) {
    if samples.is_empty() {
        if test_mode() {
            println!("{group}/{name}: test ok");
        } else {
            println!("{group}/{name}: no samples");
        }
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{group}/{name}: mean {:.3} ms  [min {:.3} ms, max {:.3} ms]  ({} samples)",
        mean * 1e3,
        min * 1e3,
        max * 1e3,
        samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut BenchmarkGroup {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: test_mode(),
        };
        f(&mut b);
        report(&self.name, name, &b.samples);
        self
    }

    /// Ends the group (marker only; reports are emitted eagerly).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
