//! Offline drop-in replacement for the subset of `proptest` this workspace
//! uses. The container has no network access, so the real crate cannot be
//! fetched; this shim keeps the property-test *sources* unchanged.
//!
//! Scope: seeded random generation of inputs from composable strategies and
//! repeated execution of the test body (`proptest!` runs each property for
//! `ProptestConfig::cases` deterministic cases). Shrinking of failing inputs
//! is intentionally **not** implemented — a failure reports the panic from
//! the raw generated case. That trades minimal counter-examples for zero
//! dependencies, which is the right trade in this sealed environment.
//!
//! Supported surface (everything `tests/property.rs` and `tests/dse.rs`
//! touch): [`Strategy`] with `prop_map`, `prop_recursive`, `boxed`;
//! [`BoxedStrategy`]; range strategies over the primitive integer types;
//! [`Just`]; [`any`]; tuple strategies up to arity 6;
//! [`collection::vec`]; the [`proptest!`], [`prop_oneof!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros; [`ProptestConfig`].

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, TestRng, Union};

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Strategies for primitive types via [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The strategy of all values of `A` — mirrors `proptest::prelude::any`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec` for `Range<usize>` sizes.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }
}

/// Everything a property test conventionally glob-imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(__name, __case as u64);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    fn arb_label() -> BoxedStrategy<String> {
        let leaf = prop_oneof![
            Just("x".to_string()),
            (0u32..10).prop_map(|v| format!("n{v}")),
        ];
        leaf.prop_recursive(2, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a} {b})"))
        })
        .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3usize..9, b in 1u64..=5, c in -4i64..4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=5).contains(&b));
            prop_assert!((-4..4).contains(&c));
        }

        #[test]
        fn recursive_strategy_terminates(s in arb_label()) {
            prop_assert!(!s.is_empty());
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec((0u32..4, 0u32..4), 1..6)) {
            prop_assert!((1..6).contains(&v.len()));
            for (x, y) in v {
                prop_assert!(x < 4 && y < 4);
            }
        }

        #[test]
        fn bool_pairs_generate_independently(x in any::<bool>(), y in any::<bool>()) {
            // Exercises the generator paths; u8 conversion checks both
            // values are genuine bools after the cast dance.
            prop_assert!(u8::from(x) <= 1 && u8::from(y) <= 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = arb_label();
        let run = |seed| {
            let mut rng = TestRng::for_case("det", seed);
            (0..16).map(|_| s.generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
