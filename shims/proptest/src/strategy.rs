//! The strategy combinators: composable deterministic value generators.
//!
//! A [`Strategy`] is a pure generator `(&self, &mut TestRng) -> Value`; all
//! combinators (`prop_map`, tuples, unions, recursion) compose generators.
//! There is no shrinking tree — see the crate docs for the rationale.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic per-case RNG (SplitMix64, same core as the `rand` shim).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one named test case: seeded from the test path and case index
    /// so every property sees a distinct but reproducible stream.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A composable generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` — mirrors `Strategy::prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: `self` is the leaf; `recurse` builds one more
    /// level from the strategy for the level below. `depth` bounds the
    /// nesting; `_desired_size` and `_expected_branch_size` are accepted for
    /// signature compatibility and ignored (no size-driven shrinking here).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            let l = leaf.clone();
            level = BoxedStrategy::from_fn(move |rng| {
                // 1-in-4 early exit keeps expected size finite while still
                // reaching full depth often.
                if rng.below(4) == 0 {
                    l.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        level
    }

    /// Type-erases the strategy — mirrors `Strategy::boxed`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always generates a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!` backing type).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof!: no arms");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy: empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
