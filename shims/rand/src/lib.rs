//! Offline drop-in replacement for the subset of the `rand` crate API this
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`,
//! `Rng::gen_bool`).
//!
//! The container has no network access and no vendored registry, so the real
//! `rand` cannot be fetched. Everything in the workspace only needs a seeded,
//! deterministic, reasonably-mixed generator — statistical quality beyond
//! that is irrelevant (the seeds feed synthetic use-case data, the annealer
//! and the random DAG generator). The core generator is SplitMix64
//! (Steele et al., "Fast splittable pseudorandom number generators"), which
//! passes BigCrush on its own and is trivially seedable from a `u64`.
//!
//! Determinism contract: for a fixed seed, the sequence of values returned
//! by any method is stable across runs, platforms and thread counts. Tests
//! in this workspace (and the DSE determinism test) rely on that.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seeding trait mirroring `rand::SeedableRng` for the `seed_from_u64` path.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension trait mirroring the used surface of `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps a 64-bit word to a float in `[0, 1)` using the top 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample itself — mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 step.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..=1000)).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..=1000)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..=1000)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1u64..=9);
            assert!((1..=9).contains(&w));
            let f = r.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_probability_edges() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..64).any(|_| r.gen_bool(0.0)));
        assert!((0..64).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&heads), "got {heads}");
    }
}
