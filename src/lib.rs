//! Root crate re-exporting the complete ARGO reproduction workspace.
//!
//! Reproduction of *"WCET-aware parallelization of model-based
//! applications for multi-cores: The ARGO approach"* (DATE 2017). Each
//! member crate owns one stage of the toolflow; this facade re-exports
//! them all so `argo::core::compile`, `argo::dse::Explorer`, … resolve
//! from a single dependency.
//!
//! * [`ir`] — mini-C frontend IR: AST, parser, CFG, interpreter;
//! * [`model`] — Xcos-like dataflow model frontend lowering to mini-C;
//! * [`adl`] — architecture description: platforms, memories, interference;
//! * [`transform`] — predictability transformations (§ II-B);
//! * [`htg`] — hierarchical task graph extraction;
//! * [`sched`] — mapping/scheduling (list, branch-and-bound, annealing);
//! * [`parir`] — explicitly parallel program model (§ II-C);
//! * [`wcet`] — code- and system-level WCET analysis (§ II-D);
//! * [`core`] — the staged [`Toolflow`] session driver chaining it all
//!   (§ II-E): typed stage artifacts, structured [`Diagnostic`]s,
//!   canonical [`Fingerprint`]s and [`StageObserver`] hooks;
//! * [`sim`] — cycle-charging simulator validating the bounds;
//! * [`apps`] — the three evaluation use cases (§ IV);
//! * [`dse`] — parallel design-space exploration with three-tier
//!   artifact caching and Pareto reporting (§ III);
//! * [`store`] — persistent content-addressed artifact store backing
//!   the `dse` cache tiers and the per-point outcome archive, enabling
//!   warm-started, incremental re-exploration across processes;
//! * [`search`] — budgeted metaheuristic search strategies (genetic,
//!   simulated annealing, successive halving) steering `dse` sweeps
//!   over large lattices;
//! * [`verify`] — independent static verification: MHP race detection,
//!   schedule/placement soundness, IR lints — the gate every schedule
//!   must pass;
//! * [`serve`] — the long-running toolflow daemon: JSON-lines wire
//!   protocol, single-flight request coalescing, bounded worker pool,
//!   all sessions sharing one persistent store;
//! * [`chaos`] — deterministic fault injection for the store's I/O
//!   backend, proving every injected fault degrades to a counted miss;
//! * [`bench`](mod@bench) — the E1–E10 experiment drivers plus the
//!   `e13_chaos` fault-injection replay.

// The session driver API, re-exported at the facade root so downstream
// code can spell `argo::Toolflow` / `argo::Diagnostic` directly.
pub use argo_core::{
    Artifact, Diagnostic, ErrorCode, Fingerprint, Fingerprintable, ScheduleCache, Stage,
    StageObserver, Toolflow,
};
// The search-layer vocabulary types, for the same reason:
// `argo::Budget`, `argo::SearchStrategy`.
pub use argo_search::{Budget, SearchStrategy};
// The verifier's session surface: `argo::ToolflowVerifyExt` brings
// `run_verify` into scope next to `argo::Toolflow`.
pub use argo_verify::{ToolflowVerifyExt, VerifyConfig, VerifyReport};

pub use argo_adl as adl;
pub use argo_apps as apps;
pub use argo_bench as bench;
pub use argo_chaos as chaos;
pub use argo_core as core;
pub use argo_dse as dse;
pub use argo_htg as htg;
pub use argo_ir as ir;
pub use argo_model as model;
pub use argo_parir as parir;
pub use argo_sched as sched;
pub use argo_search as search;
pub use argo_serve as serve;
pub use argo_sim as sim;
pub use argo_store as store;
pub use argo_trace as trace;
pub use argo_transform as transform;
pub use argo_verify as verify;
pub use argo_wcet as wcet;
