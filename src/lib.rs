//! Root crate re-exporting the ARGO reproduction workspace (see `argo_core`).
pub use argo_core as core;
